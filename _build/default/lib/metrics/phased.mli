(** Phase-aware prediction metrics with a path-retirement model.

    Section 6.1 of the paper notes that its accumulated hit/noise metrics
    cannot see phase changes, and announces as future work an extension
    that "models path removal from the prediction set", giving "an
    abstract measure to evaluate how well a prediction scheme reacts to
    phase changes and how well it handles phase-induced noise".  This
    module implements that extension.

    The trace is cut into fixed-size windows, each with its own hot set
    (frequency above [threshold] of the window's flow).  The scheme is
    replayed with a {!retirement} policy that may remove predictions; per
    window the module reports:

    - {e hit rate} against the {e window's} hot set — a scheme that keeps
      predicting last phase's paths scores poorly here;
    - {e phase noise} — captured flow of paths cold in this window (the
      formerly-hot-now-cold flow of Section 6.1);
    - {e stale predictions} — live predictions that did not execute at all
      during the window: dead fragments occupying the cache. *)

module Scheme = Hotpath_prediction.Scheme
module Recorder = Hotpath_trace.Recorder

type retirement =
  | No_retirement  (** The accumulated model of Sections 3–5. *)
  | Flush_every of int
      (** Clear the prediction set every [n] instances (periodic cache
          flush). *)
  | Flush_on_spike of { window : int; factor : float; min_preds : int }
      (** Dynamo's heuristic: clear when a window's prediction count jumps
          above [factor] x the EWMA baseline (and at least [min_preds]). *)
  | Ttl of int
      (** Retire a prediction [n] instances after its last execution —
          an idealized per-path retiring scheme (the paper cites the
          hardware hot-spot detector of Merten et al. for this idea). *)

type window_row = {
  w_index : int;
  w_flow : int;  (** Instances in the window. *)
  w_hot_paths : int;
  w_hot_flow : int;
  w_hits : int;
  w_phase_noise : int;
  w_hit_rate : float;  (** 100 x hits / hot flow of the window. *)
  w_phase_noise_rate : float;
  w_live_predictions : int;  (** Prediction-set size at window end. *)
  w_stale_predictions : int;
      (** Live predictions with zero executions in the window. *)
}

type outcome = {
  windows : window_row list;
  avg_hit_rate : float;  (** Hot-flow-weighted over windows. *)
  avg_phase_noise_rate : float;
  avg_stale_fraction : float;
      (** Mean share of the live prediction set that is stale, over
          windows with a non-empty set. *)
  retired : int;  (** Predictions removed by the policy. *)
}

val run :
  Scheme.packed ->
  delay:int ->
  window:int ->
  retirement:retirement ->
  threshold:float ->
  Recorder.t ->
  outcome
(** @raise Invalid_argument when [window < 1], [delay < 1], or the
    threshold is outside (0,1). *)

val pp_window : Format.formatter -> window_row -> unit
