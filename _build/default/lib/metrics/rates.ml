module Replay = Hotpath_prediction.Replay
module Stats = Hotpath_util.Stats

type t = {
  hit_rate : float;
  noise_rate : float;
  profiled_flow_pct : float;
  hits : int;
  noise : int;
  moc : int;
  predicted_hot : int;
  predicted_cold : int;
}

let operational (o : Replay.outcome) (hot : Hot_set.t) =
  let hits = ref 0
  and noise = ref 0
  and moc = ref 0
  and predicted_hot = ref 0
  and predicted_cold = ref 0 in
  Array.iteri
    (fun pid at ->
       if at <> max_int then begin
         let captured = o.Replay.captured.(pid) in
         if Hot_set.is_hot hot pid then begin
           incr predicted_hot;
           hits := !hits + captured;
           moc := !moc + (o.Replay.freq.(pid) - captured)
         end
         else begin
           incr predicted_cold;
           noise := !noise + captured
         end
       end)
    o.Replay.predicted_at;
  let hot_flow = float_of_int hot.Hot_set.hot_flow in
  {
    hit_rate = Stats.pct (float_of_int !hits) hot_flow;
    noise_rate = Stats.pct (float_of_int !noise) hot_flow;
    profiled_flow_pct =
      Stats.pct
        (float_of_int o.Replay.profiled_instances)
        (float_of_int o.Replay.total_instances);
    hits = !hits;
    noise = !noise;
    moc = !moc;
    predicted_hot = !predicted_hot;
    predicted_cold = !predicted_cold;
  }

let closed_form (o : Replay.outcome) (hot : Hot_set.t) =
  let tau = o.Replay.delay in
  let hot_freq = ref 0
  and cold_freq = ref 0
  and predicted_hot = ref 0
  and predicted_cold = ref 0 in
  Array.iteri
    (fun pid at ->
       if at <> max_int then
         if Hot_set.is_hot hot pid then begin
           incr predicted_hot;
           hot_freq := !hot_freq + o.Replay.freq.(pid)
         end
         else begin
           incr predicted_cold;
           cold_freq := !cold_freq + o.Replay.freq.(pid)
         end)
    o.Replay.predicted_at;
  let hits = !hot_freq - (!predicted_hot * tau) in
  let noise = !cold_freq - (!predicted_cold * tau) in
  let moc = !predicted_hot * tau in
  let hot_flow = float_of_int hot.Hot_set.hot_flow in
  {
    hit_rate = Stats.pct (float_of_int hits) hot_flow;
    noise_rate = Stats.pct (float_of_int noise) hot_flow;
    profiled_flow_pct =
      Stats.pct
        (float_of_int o.Replay.profiled_instances)
        (float_of_int o.Replay.total_instances);
    hits;
    noise;
    moc;
    predicted_hot = !predicted_hot;
    predicted_cold = !predicted_cold;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<h>hit=%.1f%% noise=%.1f%% profiled=%.1f%% moc=%d pred(hot=%d,cold=%d)@]"
    t.hit_rate t.noise_rate t.profiled_flow_pct t.moc t.predicted_hot t.predicted_cold
