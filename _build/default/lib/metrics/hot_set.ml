type t = {
  threshold : float;
  cutoff : float;
  members : bool array;
  ids : int array;
  hot_flow : int;
  total_flow : int;
}

let compute ~freq ~total_flow ~threshold =
  if threshold <= 0.0 || threshold >= 1.0 then
    invalid_arg "Hot_set.compute: threshold must be in (0,1)";
  let sum = Array.fold_left ( + ) 0 freq in
  if sum <> total_flow then
    invalid_arg
      (Printf.sprintf "Hot_set.compute: total_flow %d <> sum of freq %d" total_flow sum);
  let cutoff = threshold *. float_of_int total_flow in
  let members = Array.map (fun f -> float_of_int f > cutoff) freq in
  let ids =
    Array.to_list members
    |> List.mapi (fun id hot -> (id, hot))
    |> List.filter_map (fun (id, hot) -> if hot then Some id else None)
    |> List.sort (fun a b -> Int.compare freq.(b) freq.(a))
    |> Array.of_list
  in
  let hot_flow = Array.fold_left (fun acc id -> acc + freq.(id)) 0 ids in
  { threshold; cutoff; members; ids; hot_flow; total_flow }

let of_outcome (o : Hotpath_prediction.Replay.outcome) ~threshold =
  compute ~freq:o.Hotpath_prediction.Replay.freq
    ~total_flow:o.Hotpath_prediction.Replay.total_instances ~threshold

let is_hot t id = id >= 0 && id < Array.length t.members && t.members.(id)

let size t = Array.length t.ids

let flow_pct t =
  Hotpath_util.Stats.pct (float_of_int t.hot_flow) (float_of_int t.total_flow)
