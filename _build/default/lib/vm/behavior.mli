(** Branch behaviour models.

    The paper's measurements are functions of the dynamic branch trace, so
    the workload substitute drives every conditional branch and indirect
    jump from a stochastic model.  Models are deterministic given the
    generator seed. *)

module Cfg = Hotpath_cfg.Cfg

type branch_model =
  | Always of bool  (** Unconditionally taken / not taken. *)
  | Bias of float
      (** Taken with fixed probability.  [Bias 0.95] yields a dominant path;
          [Bias 0.5] a flat path mix. *)
  | Correlated of { bits : int; taken_prob : float array }
      (** Probability of taken indexed by the low [bits] of the global
          branch-history register — models the branch correlation that path
          profiling captures and isolated edge counts miss.
          [Array.length taken_prob = 1 lsl bits]; [bits <= 16]. *)
  | Periodic of bool array
      (** Deterministic cycle over the branch's own execution count —
          e.g. [[|true; true; false|]] exits a loop every third iteration. *)
  | Phased of (int * branch_model) array
      (** [(until_step, model)] pairs by ascending step threshold: the model
          whose threshold first exceeds the VM's global step count applies;
          the last entry applies forever after.  Models program phase
          changes (Section 6.1 of the paper). *)

type indirect_model =
  | Uniform_target  (** Uniform over the indirect target list. *)
  | Weighted_target of float array
      (** Probability proportional to weight, by target index. *)
  | Phased_target of (int * float array) array
      (** Step-phased weights, same convention as {!Phased}. *)

type t
(** Behaviour assignment for one program: a branch model per conditional
    branch and an indirect model per indirect jump. *)

val create :
  Cfg.program ->
  ?default_branch:branch_model ->
  ?default_indirect:indirect_model ->
  unit ->
  t
(** Fresh behaviour where every branch follows [default_branch] (default
    [Bias 0.5]) and every indirect jump [default_indirect] (default
    [Uniform_target]). *)

val set_branch : t -> Cfg.block_id -> branch_model -> unit
(** Assign a model to the branch terminating [block].  @raise
    Invalid_argument when the block's terminator is not [Branch]. *)

val set_indirect : t -> Cfg.block_id -> indirect_model -> unit
(** @raise Invalid_argument when the block's terminator is not
    [Indirect]. *)

val branch_model : t -> Cfg.block_id -> branch_model

val indirect_model : t -> Cfg.block_id -> indirect_model

val validate : t -> (unit, string) result
(** Check model well-formedness: probabilities in [\[0,1\]], correlated
    tables of length [2^bits] with [0 < bits <= 16], non-empty periodic
    patterns, phased schedules non-empty with ascending thresholds,
    weighted target vectors matching the target-list length with a positive
    sum. *)

(** Decision state threaded by the VM: global branch-history register,
    per-branch execution counts, global step count, and the random
    stream. *)
module Decider : sig
  type behavior := t

  type t

  val create : Cfg.program -> behavior -> rng:Hotpath_util.Prng.t -> t

  val decide_branch : t -> Cfg.block_id -> bool
  (** Outcome for the conditional branch at [block]; updates history and
      counts. *)

  val decide_indirect : t -> Cfg.block_id -> targets:Cfg.block_id array -> Cfg.block_id
  (** Target choice for the indirect jump at [block]. *)

  val tick : t -> unit
  (** Advance the global step counter (one per executed block). *)

  val steps : t -> int

  val history : t -> int
  (** Current global history register (low bit = most recent outcome). *)
end
