lib/vm/vm.ml: Behavior Format Hotpath_cfg Hotpath_util Printf
