lib/vm/vm.mli: Behavior Format Hotpath_cfg Hotpath_util
