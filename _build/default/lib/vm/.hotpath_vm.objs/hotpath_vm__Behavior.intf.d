lib/vm/behavior.mli: Hotpath_cfg Hotpath_util
