lib/vm/behavior.ml: Array Bool Hotpath_cfg Hotpath_util Printf
