module Cfg = Hotpath_cfg.Cfg
module Prng = Hotpath_util.Prng

type branch_model =
  | Always of bool
  | Bias of float
  | Correlated of { bits : int; taken_prob : float array }
  | Periodic of bool array
  | Phased of (int * branch_model) array

type indirect_model =
  | Uniform_target
  | Weighted_target of float array
  | Phased_target of (int * float array) array

type t = {
  program : Cfg.program;
  branches : branch_model array;  (* indexed by block id; meaningful for Branch blocks *)
  indirects : indirect_model array;  (* indexed by block id; meaningful for Indirect blocks *)
}

let create program ?(default_branch = Bias 0.5) ?(default_indirect = Uniform_target) () =
  let n = Array.length program.Cfg.blocks in
  {
    program;
    branches = Array.make n default_branch;
    indirects = Array.make n default_indirect;
  }

let set_branch t b model =
  match (Cfg.block t.program b).term with
  | Cfg.Branch _ -> t.branches.(b) <- model
  | _ -> invalid_arg (Printf.sprintf "Behavior.set_branch: block %d is not a branch" b)

let set_indirect t b model =
  match (Cfg.block t.program b).term with
  | Cfg.Indirect _ -> t.indirects.(b) <- model
  | _ ->
    invalid_arg (Printf.sprintf "Behavior.set_indirect: block %d is not indirect" b)

let branch_model t b = t.branches.(b)

let indirect_model t b = t.indirects.(b)

let prob_ok p = p >= 0.0 && p <= 1.0

let rec branch_model_ok = function
  | Always _ -> Ok ()
  | Bias p -> if prob_ok p then Ok () else Error "Bias probability out of [0,1]"
  | Correlated { bits; taken_prob } ->
    if bits <= 0 || bits > 16 then Error "Correlated bits out of (0,16]"
    else if Array.length taken_prob <> 1 lsl bits then
      Error "Correlated table length is not 2^bits"
    else if not (Array.for_all prob_ok taken_prob) then
      Error "Correlated probability out of [0,1]"
    else Ok ()
  | Periodic pattern ->
    if Array.length pattern = 0 then Error "Periodic pattern is empty" else Ok ()
  | Phased schedule ->
    if Array.length schedule = 0 then Error "Phased schedule is empty"
    else begin
      let ascending = ref true in
      Array.iteri
        (fun i (threshold, _) ->
           if i > 0 && threshold <= fst schedule.(i - 1) then ascending := false)
        schedule;
      if not !ascending then Error "Phased thresholds not ascending"
      else
        Array.fold_left
          (fun acc (_, m) -> match acc with Error _ -> acc | Ok () -> branch_model_ok m)
          (Ok ()) schedule
    end

let weights_ok ~ntargets w =
  if Array.length w <> ntargets then Error "weight vector length mismatch"
  else if not (Array.for_all (fun x -> x >= 0.0) w) then Error "negative weight"
  else if Array.fold_left ( +. ) 0.0 w <= 0.0 then Error "zero total weight"
  else Ok ()

let indirect_model_ok ~ntargets = function
  | Uniform_target -> Ok ()
  | Weighted_target w -> weights_ok ~ntargets w
  | Phased_target schedule ->
    if Array.length schedule = 0 then Error "Phased_target schedule is empty"
    else
      Array.fold_left
        (fun acc (_, w) ->
           match acc with Error _ -> acc | Ok () -> weights_ok ~ntargets w)
        (Ok ()) schedule

let validate t =
  let result = ref (Ok ()) in
  Array.iter
    (fun b ->
       if !result = Ok () then
         match b.Cfg.term with
         | Cfg.Branch _ -> begin
             match branch_model_ok t.branches.(b.Cfg.id) with
             | Ok () -> ()
             | Error e ->
               result := Error (Printf.sprintf "block %d branch model: %s" b.Cfg.id e)
           end
         | Cfg.Indirect targets -> begin
             match indirect_model_ok ~ntargets:(Array.length targets) t.indirects.(b.Cfg.id) with
             | Ok () -> ()
             | Error e ->
               result := Error (Printf.sprintf "block %d indirect model: %s" b.Cfg.id e)
           end
         | Cfg.Jump _ | Cfg.Call _ | Cfg.Return | Cfg.Exit -> ())
    t.program.Cfg.blocks;
  !result

module Decider = struct
  type behavior = t

  type t = {
    behavior : behavior;
    rng : Prng.t;
    exec_counts : int array;  (* per-block execution count, drives Periodic *)
    mutable hist : int;
    mutable step_count : int;
  }

  let create program behavior ~rng =
    ignore program;
    {
      behavior;
      rng;
      exec_counts = Array.make (Array.length behavior.program.Cfg.blocks) 0;
      hist = 0;
      step_count = 0;
    }

  let steps t = t.step_count

  let history t = t.hist

  let tick t = t.step_count <- t.step_count + 1

  let rec eval_branch t b = function
    | Always v -> v
    | Bias p -> Prng.bool t.rng ~p
    | Correlated { bits; taken_prob } ->
      let idx = t.hist land ((1 lsl bits) - 1) in
      Prng.bool t.rng ~p:taken_prob.(idx)
    | Periodic pattern -> pattern.(t.exec_counts.(b) mod Array.length pattern)
    | Phased schedule ->
      let model = phase_pick t schedule in
      eval_branch t b model

  and phase_pick : 'a. t -> (int * 'a) array -> 'a =
    fun t schedule ->
    let n = Array.length schedule in
    let rec find i =
      if i = n - 1 then snd schedule.(i)
      else if t.step_count < fst schedule.(i) then snd schedule.(i)
      else find (i + 1)
    in
    find 0

  let decide_branch t b =
    let outcome = eval_branch t b t.behavior.branches.(b) in
    t.exec_counts.(b) <- t.exec_counts.(b) + 1;
    t.hist <- ((t.hist lsl 1) lor Bool.to_int outcome) land 0xFFFF;
    outcome

  let decide_indirect t b ~targets =
    let idx =
      match t.behavior.indirects.(b) with
      | Uniform_target -> Prng.int t.rng ~bound:(Array.length targets)
      | Weighted_target w -> Prng.pick_weighted t.rng ~weights:w
      | Phased_target schedule ->
        Prng.pick_weighted t.rng ~weights:(phase_pick t schedule)
    in
    t.exec_counts.(b) <- t.exec_counts.(b) + 1;
    targets.(idx)
end
