module Cfg = Hotpath_cfg.Cfg
module Vm = Hotpath_vm.Vm

type window = { w_branches : (Cfg.block_id * bool) array }

let window_to_string w =
  String.concat ""
    (Array.to_list
       (Array.map
          (fun (b, taken) -> Printf.sprintf "(B%d:%d)" b (Bool.to_int taken))
          w.w_branches))

type t = {
  size : int;
  fifo : (Cfg.block_id * bool) array;  (* ring buffer *)
  mutable next : int;  (* ring insertion point *)
  mutable seen : int;  (* total branches observed *)
  table : (window, int) Hashtbl.t;
}

let create ~k =
  if k < 1 || k > 32 then invalid_arg "Young_smith.create: k must be in [1,32]";
  { size = k; fifo = Array.make k (0, false); next = 0; seen = 0; table = Hashtbl.create 256 }

let k t = t.size

let current_window t =
  (* Oldest-first snapshot of the ring. *)
  { w_branches = Array.init t.size (fun i -> t.fifo.((t.next + i) mod t.size)) }

let on_transfer t (tr : Vm.transfer) =
  match tr.Vm.kind with
  | Vm.T_branch { taken } ->
    t.fifo.(t.next) <- (tr.Vm.src, taken);
    t.next <- (t.next + 1) mod t.size;
    t.seen <- t.seen + 1;
    if t.seen >= t.size then begin
      let w = current_window t in
      let prev = Option.value ~default:0 (Hashtbl.find_opt t.table w) in
      Hashtbl.replace t.table w (prev + 1)
    end
  | Vm.T_jump | Vm.T_indirect | Vm.T_call | Vm.T_return | Vm.T_exit -> ()

let branches_seen t = t.seen

let counts t =
  Hashtbl.fold (fun w c acc -> (w, c) :: acc) t.table []
  |> List.sort (fun (w1, c1) (w2, c2) ->
      let c = Int.compare c2 c1 in
      if c <> 0 then c else compare w1 w2)

let counter_space t = Hashtbl.length t.table

let top t ~n =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take n (counts t)
