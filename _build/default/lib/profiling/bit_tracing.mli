(** Bit-tracing path profiler (Section 2 of the paper).

    Constructs path signatures on the fly — one shift per executed
    conditional branch, one table update per completed path — with no
    preparatory static analysis.  This is the offline scheme the paper's
    path-profile-based prediction is derived from, so its cost accounting
    (shift operations, table updates, counter space) is what Figures 4/5
    charge to that scheme.

    The heavy lifting (signature construction, interning) is shared with
    {!Hotpath_trace}; this module layers the profile view and the cost
    model over a recorded trace. *)

module Path = Hotpath_trace.Path

type profile = {
  entries : (Path.t * int) array;
      (** (path, frequency), descending frequency; ties by path id. *)
  total_flow : int;  (** Completed path executions. *)
  shift_ops : int;
      (** Signature shift-or operations: one per executed conditional
          branch. *)
  table_updates : int;  (** One per completed path execution. *)
  counter_space : int;  (** Distinct paths — live counters in the table. *)
}

val profile : Hotpath_trace.Recorder.t -> profile
(** Full-run profile of a recorded trace. *)

val hot_set : profile -> threshold:float -> (Path.t * int) array
(** Paths whose frequency exceeds [threshold] (a fraction, e.g. [0.001]
    for the paper's 0.1%) of the total flow, descending frequency.
    @raise Invalid_argument unless [0 < threshold < 1]. *)

val coverage : profile -> (Path.t * int) array -> float
(** Percentage of total flow captured by the given paths — the offline
    coverage metric hit rate is the online analog of. *)
