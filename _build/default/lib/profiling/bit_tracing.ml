module Path = Hotpath_trace.Path
module Recorder = Hotpath_trace.Recorder

type profile = {
  entries : (Path.t * int) array;
  total_flow : int;
  shift_ops : int;
  table_updates : int;
  counter_space : int;
}

let profile (r : Recorder.t) =
  let freq = Recorder.frequencies r in
  let entries =
    Array.mapi (fun id count -> (Hotpath_trace.Path_table.path r.Recorder.table id, count)) freq
  in
  Array.sort
    (fun (p1, c1) (p2, c2) ->
       let c = Int.compare c2 c1 in
       if c <> 0 then c else Int.compare p1.Path.id p2.Path.id)
    entries;
  let shift_ops =
    Array.fold_left
      (fun acc (p, count) -> acc + (p.Path.n_branches * count))
      0 entries
  in
  {
    entries;
    total_flow = Recorder.num_instances r;
    shift_ops;
    table_updates = Recorder.num_instances r;
    counter_space = Recorder.num_paths r;
  }

let hot_set p ~threshold =
  if threshold <= 0.0 || threshold >= 1.0 then
    invalid_arg "Bit_tracing.hot_set: threshold must be in (0,1)";
  let cutoff = threshold *. float_of_int p.total_flow in
  Array.of_list
    (List.filter
       (fun (_, count) -> float_of_int count > cutoff)
       (Array.to_list p.entries))

let coverage p paths =
  let captured = Array.fold_left (fun acc (_, c) -> acc + c) 0 paths in
  Hotpath_util.Stats.pct (float_of_int captured) (float_of_int p.total_flow)
