module Recorder = Hotpath_trace.Recorder
module Hot_set = Hotpath_metrics.Hot_set

type t = {
  period : int;
  counts : int array;  (* per path id: sampled occurrences *)
  n_samples : int;
}

let profile (r : Recorder.t) ~period =
  if period < 1 then invalid_arg "Sampling.profile: period must be >= 1";
  let counts = Array.make (Recorder.num_paths r) 0 in
  let n_samples = ref 0 in
  let instances = r.Recorder.instances in
  let i = ref 0 in
  while !i < Array.length instances do
    counts.(instances.(!i)) <- counts.(instances.(!i)) + 1;
    incr n_samples;
    i := !i + period
  done;
  { period; counts; n_samples = !n_samples }

let samples t = t.n_samples

let estimated_freq t = Array.map (fun c -> c * t.period) t.counts

let counter_space t = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 t.counts

type accuracy = {
  acc_period : int;
  acc_precision : float;
  acc_recall : float;
  acc_flow_pct : float;
}

let accuracy (r : Recorder.t) ~(hot : Hot_set.t) ~period =
  let t = profile r ~period in
  let est = estimated_freq t in
  let est_total = Array.fold_left ( + ) 0 est in
  let cutoff = hot.Hot_set.threshold *. float_of_int est_total in
  let freq = Recorder.frequencies r in
  let est_hot = ref [] in
  Array.iteri (fun id e -> if float_of_int e > cutoff then est_hot := id :: !est_hot) est;
  let est_hot = !est_hot in
  let true_positive = List.filter (Hot_set.is_hot hot) est_hot in
  let tp_flow = List.fold_left (fun acc id -> acc + freq.(id)) 0 true_positive in
  {
    acc_period = period;
    acc_precision =
      (if est_hot = [] then 0.0
       else float_of_int (List.length true_positive) /. float_of_int (List.length est_hot));
    acc_recall =
      (if Hot_set.size hot = 0 then 0.0
       else float_of_int (List.length true_positive) /. float_of_int (Hot_set.size hot));
    acc_flow_pct =
      Hotpath_util.Stats.pct (float_of_int tp_flow) (float_of_int hot.Hot_set.hot_flow);
  }
