(** Young–Smith k-bounded general path profiling (TOPLAS 1999).

    A k-bounded general path is the sequence of the last [k] executed
    conditional branches — unlike Ball–Larus forward paths it may cross
    backward edges.  The profiler keeps a FIFO of the most recent [k]
    branch outcomes; every executed branch completes a new window, whose
    count is bumped (the paper's "lazy" update).

    The paper cites this as the third path-profiling flavour; here it
    also serves as a correlation-sensitive baseline: its window counts
    expose branch correlation that isolated edge profiles miss. *)

module Cfg = Hotpath_cfg.Cfg

type window = {
  w_branches : (Cfg.block_id * bool) array;
      (** The last [k] (branch block, outcome) pairs, oldest first. *)
}

val window_to_string : window -> string
(** E.g. ["(B3:1)(B5:0)"]. *)

type t

val create : k:int -> t
(** @raise Invalid_argument unless [1 <= k <= 32]. *)

val k : t -> int

val on_transfer : t -> Hotpath_vm.Vm.transfer -> unit
(** Feed one VM transfer; only conditional branches affect the FIFO. *)

val branches_seen : t -> int

val counts : t -> (window * int) list
(** (window, count), descending count.  Windows shorter than [k] (the
    warm-up prefix) are not counted. *)

val counter_space : t -> int
(** Distinct windows with a live counter. *)

val top : t -> n:int -> (window * int) list
(** The [n] hottest windows. *)
