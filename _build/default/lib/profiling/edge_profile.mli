(** Edge profiling, and hot-path estimation from edge counts.

    The cheapest classical profile: one counter per control-flow edge.
    The paper's Section 7 cites Ball, Mataga & Sagiv ("Edge profiling
    versus path profiling: the showdown", POPL 1998): an edge profile is
    enough to compute a large percentage of the hot portion of the
    corresponding path profile — offline.  This module collects edge
    counts from a recorded trace and implements the estimation side: a
    path's frequency is bounded above by the minimum count over its edges,
    and ranking paths by that bound recovers most of the hot set on
    uncorrelated workloads (and fails on correlated ones, where products
    of edge frequencies lie — see {!Hotpath_workloads} [Correlated]). *)

module Cfg = Hotpath_cfg.Cfg
module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path

type t

val collect : Recorder.t -> t
(** Edge counts over the whole recorded trace: every intra-path transfer
    plus each path's terminal transfer (recovered from the next instance's
    head, so the loop back edges are counted too). *)

val count : t -> src:Cfg.block_id -> dst:Cfg.block_id -> int

val edges : t -> ((Cfg.block_id * Cfg.block_id) * int) list
(** All edges with their counts, descending. *)

val counter_space : t -> int
(** Distinct edges with a live counter — compare with path-table and NET
    head counters. *)

val path_bound : t -> Path.t -> next_head:Cfg.block_id option -> int
(** The min-edge-count upper bound on a path's frequency.  [next_head]
    supplies the terminal edge's destination when known. *)

type estimate = {
  est_path : Path.t;
  est_bound : int;  (** Min-edge upper bound. *)
  est_true_freq : int;
}

val estimate_hot_paths : Recorder.t -> k:int -> estimate list
(** The [k] paths with the highest min-edge bounds (the edge profile's best
    guess at the hot set), with their true frequencies attached. *)

val showdown_stats :
  Recorder.t -> hot:Hotpath_metrics.Hot_set.t -> int * int * float
(** [(identified, hot_size, flow_pct)]: take the top-[|hot|] paths by edge
    bound; [identified] of them are truly hot, capturing [flow_pct] percent
    of the hot flow.  The Ball–Mataga–Sagiv claim is that this percentage
    is large on real (mostly uncorrelated) programs. *)
