module Cfg = Hotpath_cfg.Cfg
module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Signature = Hotpath_trace.Signature
module Hot_set = Hotpath_metrics.Hot_set

type t = { counts : (Cfg.block_id * Cfg.block_id, int) Hashtbl.t }

let bump t key =
  Hashtbl.replace t.counts key (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key))

(* Each path contributes its internal edges; the terminal edge goes to the
   next instance's head.  Frequencies are accumulated per distinct path
   once and multiplied, except terminal edges, which genuinely vary per
   instance (the next head differs), so the trace is walked directly. *)
let collect (r : Recorder.t) =
  let t = { counts = Hashtbl.create 1024 } in
  let paths = Path_table.paths r.Recorder.table in
  let n = Array.length r.Recorder.instances in
  for i = 0 to n - 1 do
    let p = paths.(r.Recorder.instances.(i)) in
    let blocks = p.Path.blocks in
    for j = 0 to Array.length blocks - 2 do
      bump t (blocks.(j), blocks.(j + 1))
    done;
    if i + 1 < n then begin
      let next_head = Path.head paths.(r.Recorder.instances.(i + 1)) in
      bump t (blocks.(Array.length blocks - 1), next_head)
    end
  done;
  t

let count t ~src ~dst = Option.value ~default:0 (Hashtbl.find_opt t.counts (src, dst))

let edges t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (k1, a) (k2, b) ->
      let c = Int.compare b a in
      if c <> 0 then c else compare k1 k2)

let counter_space t = Hashtbl.length t.counts

let path_bound t (p : Path.t) ~next_head =
  let blocks = p.Path.blocks in
  let bound = ref max_int in
  for j = 0 to Array.length blocks - 2 do
    bound := min !bound (count t ~src:blocks.(j) ~dst:blocks.(j + 1))
  done;
  (match next_head with
   | Some dst -> bound := min !bound (count t ~src:blocks.(Array.length blocks - 1) ~dst)
   | None -> ());
  if !bound = max_int then 0 else !bound

type estimate = { est_path : Path.t; est_bound : int; est_true_freq : int }

(* The dominant terminal edge per path (most paths end at a loop's back
   edge whose target is fixed); recovered from the trace. *)
let terminal_heads (r : Recorder.t) =
  let paths = Path_table.paths r.Recorder.table in
  let heads = Hashtbl.create 256 in
  let n = Array.length r.Recorder.instances in
  for i = 0 to n - 2 do
    let pid = r.Recorder.instances.(i) in
    if not (Hashtbl.mem heads pid) then
      Hashtbl.add heads pid (Path.head paths.(r.Recorder.instances.(i + 1)))
  done;
  heads

let estimate_hot_paths (r : Recorder.t) ~k =
  let t = collect r in
  let freq = Recorder.frequencies r in
  let heads = terminal_heads r in
  let estimates =
    Array.to_list
      (Array.map
         (fun (p : Path.t) ->
            {
              est_path = p;
              est_bound = path_bound t p ~next_head:(Hashtbl.find_opt heads p.Path.id);
              est_true_freq = freq.(p.Path.id);
            })
         (Path_table.paths r.Recorder.table))
  in
  let sorted =
    List.sort
      (fun a b ->
         let c = Int.compare b.est_bound a.est_bound in
         if c <> 0 then c else Int.compare a.est_path.Path.id b.est_path.Path.id)
      estimates
  in
  List.filteri (fun i _ -> i < k) sorted

let showdown_stats (r : Recorder.t) ~(hot : Hot_set.t) =
  let k = Hot_set.size hot in
  let top = estimate_hot_paths r ~k in
  let identified =
    List.filter (fun e -> Hot_set.is_hot hot e.est_path.Path.id) top
  in
  let flow =
    List.fold_left (fun acc e -> acc + e.est_true_freq) 0 identified
  in
  ( List.length identified,
    k,
    Hotpath_util.Stats.pct (float_of_int flow) (float_of_int hot.Hot_set.hot_flow) )
