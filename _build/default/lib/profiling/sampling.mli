(** Sampling-based hot-path identification.

    Section 1 of the paper lists sampling (and hardware counters) among the
    mechanisms a software scheme can use to collect frequency information.
    This module implements the simplest form — count every [period]-th path
    instance and scale — and quantifies what the period costs in hot-set
    accuracy, the trade-off a sampling profiler buys its low overhead
    with. *)

module Recorder = Hotpath_trace.Recorder
module Hot_set = Hotpath_metrics.Hot_set

type t

val profile : Recorder.t -> period:int -> t
(** Keep every [period]-th instance (deterministic systematic sampling;
    [period = 1] degenerates to the full profile).
    @raise Invalid_argument when [period < 1]. *)

val samples : t -> int
(** Instances actually counted. *)

val estimated_freq : t -> int array
(** Per path id: sample count x period — the scaled frequency estimate. *)

val counter_space : t -> int
(** Distinct paths with a live sample counter. *)

type accuracy = {
  acc_period : int;
  acc_precision : float;  (** Share of estimated-hot paths that are truly hot. *)
  acc_recall : float;  (** Share of truly hot paths found. *)
  acc_flow_pct : float;
      (** True flow of the correctly identified paths, as a percentage of
          the hot flow. *)
}

val accuracy : Recorder.t -> hot:Hot_set.t -> period:int -> accuracy
(** Build the sampled profile, threshold it exactly like the ground-truth
    set ([hot.threshold] over the {e estimated} flow), and compare. *)
