lib/profiling/young_smith.mli: Hotpath_cfg Hotpath_vm
