lib/profiling/sampling.ml: Array Hotpath_metrics Hotpath_trace Hotpath_util List
