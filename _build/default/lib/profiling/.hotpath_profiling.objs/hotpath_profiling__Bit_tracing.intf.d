lib/profiling/bit_tracing.mli: Hotpath_trace
