lib/profiling/sampling.mli: Hotpath_metrics Hotpath_trace
