lib/profiling/bit_tracing.ml: Array Hotpath_trace Hotpath_util Int List
