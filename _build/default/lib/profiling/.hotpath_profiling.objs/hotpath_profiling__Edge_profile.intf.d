lib/profiling/edge_profile.mli: Hotpath_cfg Hotpath_metrics Hotpath_trace
