lib/profiling/ball_larus.ml: Array Bool Fun Hashtbl Hotpath_cfg Hotpath_util Hotpath_vm Int List Option Printf
