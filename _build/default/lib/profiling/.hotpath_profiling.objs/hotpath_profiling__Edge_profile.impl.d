lib/profiling/edge_profile.ml: Array Hashtbl Hotpath_cfg Hotpath_metrics Hotpath_trace Hotpath_util Int List Option
