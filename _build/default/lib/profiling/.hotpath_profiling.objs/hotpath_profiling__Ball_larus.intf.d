lib/profiling/ball_larus.mli: Hotpath_cfg Hotpath_vm
