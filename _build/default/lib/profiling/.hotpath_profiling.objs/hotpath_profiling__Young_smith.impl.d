lib/profiling/young_smith.ml: Array Bool Hashtbl Hotpath_cfg Hotpath_vm Int List Option Printf String
