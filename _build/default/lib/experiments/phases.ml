module Suite = Hotpath_workloads.Suite
module Phased = Hotpath_metrics.Phased
module Net = Hotpath_prediction.Net
module Scheme = Hotpath_prediction.Scheme
module Tablefmt = Hotpath_util.Tablefmt

type row = {
  r_policy : string;
  r_hit_rate : float;
  r_phase_noise_rate : float;
  r_stale_fraction : float;
  r_retired : int;
  r_live_final : int;
}

let policies =
  [
    ("no-retirement", Phased.No_retirement);
    ("flush-every-20k", Phased.Flush_every 20_000);
    ( "flush-on-spike",
      Phased.Flush_on_spike { window = 2_048; factor = 2.0; min_preds = 8 } );
    ("ttl-10k", Phased.Ttl 10_000);
  ]

let compute ?(delay = 20) ?(window = 8_192) ?max_paths () =
  let recorded = Suite.record_phased ?max_paths () in
  List.map
    (fun (name, retirement) ->
       let o =
         Phased.run
           (module Net : Scheme.S)
           ~delay ~window ~retirement ~threshold:Suite.hot_threshold recorded
       in
       let live_final =
         match List.rev o.Phased.windows with
         | last :: _ -> last.Phased.w_live_predictions
         | [] -> 0
       in
       {
         r_policy = name;
         r_hit_rate = o.Phased.avg_hit_rate;
         r_phase_noise_rate = o.Phased.avg_phase_noise_rate;
         r_stale_fraction = o.Phased.avg_stale_fraction;
         r_retired = o.Phased.retired;
         r_live_final = live_final;
       })
    policies

let to_table rows =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Retirement policy", Tablefmt.Left);
          ("Windowed hit rate", Tablefmt.Right);
          ("Phase noise", Tablefmt.Right);
          ("Stale fraction", Tablefmt.Right);
          ("Retired", Tablefmt.Right);
          ("Live at end", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
       Tablefmt.add_row t
         [
           r.r_policy;
           Tablefmt.cell_pct r.r_hit_rate;
           Tablefmt.cell_pct r.r_phase_noise_rate;
           Tablefmt.cell_float ~digits:3 r.r_stale_fraction;
           Tablefmt.cell_int r.r_retired;
           Tablefmt.cell_int r.r_live_final;
         ])
    rows;
  t

let render ?delay ?window () = Tablefmt.render (to_table (compute ?delay ?window ()))
