module Suite = Hotpath_workloads.Suite
module Correlated = Hotpath_workloads.Correlated
module Recorder = Hotpath_trace.Recorder
module Edge_profile = Hotpath_profiling.Edge_profile
module Sampling = Hotpath_profiling.Sampling
module Hot_set = Hotpath_metrics.Hot_set
module Tablefmt = Hotpath_util.Tablefmt
module Prng = Hotpath_util.Prng

type showdown_row = {
  s_bench : string;
  s_hot : int;
  s_identified : int;
  s_flow_pct : float;
  s_edge_counters : int;
  s_path_counters : int;
}

let showdown_row ~name ~recorded ~hot =
  let identified, hot_size, flow_pct = Edge_profile.showdown_stats recorded ~hot in
  let edge = Edge_profile.collect recorded in
  {
    s_bench = name;
    s_hot = hot_size;
    s_identified = identified;
    s_flow_pct = flow_pct;
    s_edge_counters = Edge_profile.counter_space edge;
    s_path_counters = Recorder.num_paths recorded;
  }

let correlated_run () =
  let program, behavior = Correlated.build ~triples:2 ~iterations:5_000 () in
  let recorded =
    Recorder.record ~max_paths:60_000 ~max_steps:3_000_000 program behavior
      ~rng:(Prng.create ~seed:4242)
  in
  let hot =
    Hot_set.compute
      ~freq:(Recorder.frequencies recorded)
      ~total_flow:(Recorder.num_instances recorded)
      ~threshold:Suite.hot_threshold
  in
  (recorded, hot)

let showdown ?scale () =
  let rows =
    List.map
      (fun (run : Runs.run) ->
         showdown_row ~name:run.Runs.bench.Suite.b_name ~recorded:run.Runs.recorded
           ~hot:run.Runs.hot)
      (Runs.load_all ?scale ())
  in
  let recorded, hot = correlated_run () in
  rows @ [ showdown_row ~name:"correlated" ~recorded ~hot ]

let render_showdown ?scale () =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Benchmark", Tablefmt.Left);
          ("Hot paths", Tablefmt.Right);
          ("Identified by edges", Tablefmt.Right);
          ("Hot flow recovered", Tablefmt.Right);
          ("Edge counters", Tablefmt.Right);
          ("Path counters", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
       Tablefmt.add_row t
         [
           r.s_bench;
           Tablefmt.cell_int r.s_hot;
           Tablefmt.cell_int r.s_identified;
           Tablefmt.cell_pct r.s_flow_pct;
           Tablefmt.cell_int r.s_edge_counters;
           Tablefmt.cell_int r.s_path_counters;
         ])
    (showdown ?scale ());
  Tablefmt.render t

type sampling_row = {
  p_bench : string;
  p_period : int;
  p_precision : float;
  p_recall : float;
  p_flow_pct : float;
}

let sampling ?scale ?(periods = [ 10; 100; 1000 ]) () =
  List.concat_map
    (fun (run : Runs.run) ->
       List.map
         (fun period ->
            let acc =
              Sampling.accuracy run.Runs.recorded ~hot:run.Runs.hot ~period
            in
            {
              p_bench = run.Runs.bench.Suite.b_name;
              p_period = period;
              p_precision = acc.Sampling.acc_precision;
              p_recall = acc.Sampling.acc_recall;
              p_flow_pct = acc.Sampling.acc_flow_pct;
            })
         periods)
    (Runs.load_all ?scale ())

let render_sampling ?scale () =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Benchmark", Tablefmt.Left);
          ("Period", Tablefmt.Right);
          ("Precision", Tablefmt.Right);
          ("Recall", Tablefmt.Right);
          ("Hot flow recovered", Tablefmt.Right);
        ]
  in
  let rows = sampling ?scale () in
  List.iteri
    (fun i r ->
       if i > 0 && i mod 3 = 0 then Tablefmt.add_separator t;
       Tablefmt.add_row t
         [
           r.p_bench;
           Tablefmt.cell_int r.p_period;
           Tablefmt.cell_float ~digits:3 r.p_precision;
           Tablefmt.cell_float ~digits:3 r.p_recall;
           Tablefmt.cell_pct r.p_flow_pct;
         ])
    rows;
  Tablefmt.render t
