lib/experiments/figures23.ml: Array Buffer Float Fun Hotpath_metrics Hotpath_prediction Hotpath_util Hotpath_workloads List Printf Runs
