lib/experiments/phases.mli: Hotpath_metrics Hotpath_util
