lib/experiments/fig4.ml: Array Hotpath_prediction Hotpath_util Hotpath_workloads List Runs
