lib/experiments/table1.mli: Hotpath_util
