lib/experiments/table2.mli: Hotpath_util
