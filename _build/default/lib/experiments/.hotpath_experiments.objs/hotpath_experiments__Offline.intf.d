lib/experiments/offline.mli:
