lib/experiments/fig5.mli: Hotpath_dynamo Hotpath_util
