lib/experiments/ablations.ml: Array Hotpath_dynamo Hotpath_metrics Hotpath_prediction Hotpath_trace Hotpath_util Hotpath_workloads List Printf Runs
