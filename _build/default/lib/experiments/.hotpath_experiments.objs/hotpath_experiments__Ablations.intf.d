lib/experiments/ablations.mli: Hotpath_prediction
