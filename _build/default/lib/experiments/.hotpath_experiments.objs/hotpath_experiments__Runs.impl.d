lib/experiments/runs.ml: Hashtbl Hotpath_metrics Hotpath_trace Hotpath_workloads List
