lib/experiments/fig4.mli: Hotpath_util
