lib/experiments/fig5.ml: Array Hotpath_dynamo Hotpath_prediction Hotpath_util Hotpath_workloads List Printf Runs
