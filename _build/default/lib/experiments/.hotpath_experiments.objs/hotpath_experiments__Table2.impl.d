lib/experiments/table2.ml: Hotpath_trace Hotpath_util Hotpath_workloads List Runs
