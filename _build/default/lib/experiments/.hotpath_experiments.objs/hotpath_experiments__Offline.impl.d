lib/experiments/offline.ml: Hotpath_metrics Hotpath_profiling Hotpath_trace Hotpath_util Hotpath_workloads List Runs
