lib/experiments/phases.ml: Hotpath_metrics Hotpath_prediction Hotpath_util Hotpath_workloads List
