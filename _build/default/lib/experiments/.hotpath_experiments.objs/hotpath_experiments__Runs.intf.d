lib/experiments/runs.mli: Hotpath_metrics Hotpath_trace Hotpath_workloads
