lib/experiments/table1.ml: Hotpath_metrics Hotpath_trace Hotpath_util Hotpath_workloads List Runs
