(** Offline-profiling comparisons surrounding the paper's Section 7.

    - {b Edge-vs-path showdown} (Ball, Mataga & Sagiv, cited as [6]): how
      much of the true hot-path set an edge profile's min-edge-bound
      ranking recovers.  Expected: a large share on the (mostly
      uncorrelated) suite — the paper's stated offline analogue of the
      NET result — and a visible failure on the correlated workload.
    - {b Sampling accuracy}: hot-set precision/recall of a systematic
      sampling profiler as the sampling period grows; quantifies the
      overhead/accuracy trade-off of the sampling-based collection the
      paper's Section 1 mentions. *)

type showdown_row = {
  s_bench : string;
  s_hot : int;  (** True hot-set size. *)
  s_identified : int;  (** Truly hot among the top-|hot| by edge bound. *)
  s_flow_pct : float;  (** Their true flow over the hot flow. *)
  s_edge_counters : int;
  s_path_counters : int;
}

val showdown : ?scale:float -> unit -> showdown_row list
(** The nine benchmarks plus a final ["correlated"] row. *)

val render_showdown : ?scale:float -> unit -> string

type sampling_row = {
  p_bench : string;
  p_period : int;
  p_precision : float;
  p_recall : float;
  p_flow_pct : float;
}

val sampling : ?scale:float -> ?periods:int list -> unit -> sampling_row list
(** Default periods: 10, 100, 1000. *)

val render_sampling : ?scale:float -> unit -> string
