module Suite = Hotpath_workloads.Suite
module Scheme = Hotpath_prediction.Scheme
module Engine = Hotpath_dynamo.Engine
module Cost_model = Hotpath_dynamo.Cost_model
module Tablefmt = Hotpath_util.Tablefmt
module Stats = Hotpath_util.Stats

type cell = { speedup_pct : float; bailed : bool }

type row = { name : string; cells : (string * int * cell) list }

let delays = [ 10; 50; 100 ]

let schemes : (string * Scheme.packed * (Cost_model.t -> Engine.scheme_costs)) list =
  [
    ("net", (module Hotpath_prediction.Net : Scheme.S), Engine.net_costs);
    ( "path-profile",
      (module Hotpath_prediction.Path_profile : Scheme.S),
      Engine.path_profile_costs );
  ]

let run_bench ?scale ~cost bench =
  let run = Runs.load ?scale bench in
  let cells =
    List.concat_map
      (fun (scheme_name, scheme, costs_of) ->
         List.map
           (fun delay ->
              let config =
                Engine.config ~cost ~scheme ~scheme_costs:(costs_of cost) ~delay ()
              in
              let result = Engine.run config run.Runs.recorded in
              ( scheme_name,
                delay,
                {
                  speedup_pct = result.Engine.r_speedup_pct;
                  bailed = result.Engine.r_bailed;
                } ))
           delays)
      schemes
  in
  { name = bench.Suite.b_name; cells }

let average rows =
  let cells =
    List.concat_map
      (fun (scheme_name, _, _) ->
         List.map
           (fun delay ->
              let values =
                List.map
                  (fun row ->
                     let _, _, cell =
                       List.find
                         (fun (s, d, _) -> s = scheme_name && d = delay)
                         row.cells
                     in
                     cell.speedup_pct)
                  rows
              in
              ( scheme_name,
                delay,
                { speedup_pct = Stats.mean (Array.of_list values); bailed = false } ))
           delays)
      schemes
  in
  { name = "Average"; cells }

let default_scale = 8.0

let compute ?(scale = default_scale) ?(cost = Cost_model.default) () =
  let rows = List.map (run_bench ~scale ~cost) Suite.dynamo_set in
  rows @ [ average rows ]

let compute_all ?(scale = default_scale) ?(cost = Cost_model.default) () =
  List.map (run_bench ~scale ~cost) Suite.all

let to_table rows =
  let headers =
    List.concat_map
      (fun (scheme_name, _, _) ->
         List.map
           (fun d -> (Printf.sprintf "%s %d" scheme_name d, Tablefmt.Right))
           delays)
      schemes
  in
  let t = Tablefmt.create ~columns:(("Benchmark", Tablefmt.Left) :: headers) in
  List.iter
    (fun row ->
       let cells =
         List.map
           (fun (_, _, c) ->
              if c.bailed then "bail-out"
              else Printf.sprintf "%+.1f%%" c.speedup_pct)
           row.cells
       in
       Tablefmt.add_row t (row.name :: cells))
    rows;
  t

let render ?scale ?(all = false) () =
  let rows = if all then compute_all ?scale () else compute ?scale () in
  Tablefmt.render (to_table rows)
