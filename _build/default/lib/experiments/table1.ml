module Suite = Hotpath_workloads.Suite
module Recorder = Hotpath_trace.Recorder
module Hot_set = Hotpath_metrics.Hot_set
module Tablefmt = Hotpath_util.Tablefmt

type row = {
  name : string;
  paths : int;
  flow : int;
  hot_paths : int;
  hot_flow_pct : float;
  paper_paths : int;
  paper_flow_m : int;
  paper_hot_paths : int;
  paper_hot_flow_pct : float;
}

let compute ?scale () =
  List.map
    (fun (run : Runs.run) ->
       let paper = run.Runs.bench.Suite.b_paper in
       {
         name = run.Runs.bench.Suite.b_name;
         paths = Recorder.num_paths run.Runs.recorded;
         flow = Recorder.num_instances run.Runs.recorded;
         hot_paths = Hot_set.size run.Runs.hot;
         hot_flow_pct = Hot_set.flow_pct run.Runs.hot;
         paper_paths = paper.Suite.pr_paths;
         paper_flow_m = paper.Suite.pr_flow_m;
         paper_hot_paths = paper.Suite.pr_hot_paths;
         paper_hot_flow_pct = paper.Suite.pr_hot_flow_pct;
       })
    (Runs.load_all ?scale ())

let to_table rows =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Benchmark", Tablefmt.Left);
          ("#Paths", Tablefmt.Right);
          ("Flow", Tablefmt.Right);
          ("0.1% #Paths", Tablefmt.Right);
          ("0.1% %Flow", Tablefmt.Right);
          ("paper #Paths", Tablefmt.Right);
          ("paper Flow(M)", Tablefmt.Right);
          ("paper 0.1% #Paths", Tablefmt.Right);
          ("paper %Flow", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
       Tablefmt.add_row t
         [
           r.name;
           Tablefmt.cell_int r.paths;
           Tablefmt.cell_int r.flow;
           Tablefmt.cell_int r.hot_paths;
           Tablefmt.cell_pct r.hot_flow_pct;
           Tablefmt.cell_int r.paper_paths;
           Tablefmt.cell_int r.paper_flow_m;
           Tablefmt.cell_int r.paper_hot_paths;
           Tablefmt.cell_pct r.paper_hot_flow_pct;
         ])
    rows;
  t

let render ?scale () = Tablefmt.render (to_table (compute ?scale ()))
