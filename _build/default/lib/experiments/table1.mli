(** Table 1 of the paper: the benchmark set.

    Per benchmark: total distinct paths, total flow, size of the 0.1% hot
    set, and the share of flow it captures — measured on the synthetic
    workloads, printed alongside the paper's published values.  Flow is
    scaled (see {!Hotpath_workloads.Suite}), so paths and flow compare by
    shape, while %Flow compares directly. *)

type row = {
  name : string;
  paths : int;
  flow : int;  (** Path instances recorded. *)
  hot_paths : int;
  hot_flow_pct : float;
  paper_paths : int;
  paper_flow_m : int;
  paper_hot_paths : int;
  paper_hot_flow_pct : float;
}

val compute : ?scale:float -> unit -> row list
(** Table 1 order. *)

val to_table : row list -> Hotpath_util.Tablefmt.t

val render : ?scale:float -> unit -> string
