module Suite = Hotpath_workloads.Suite
module Recorder = Hotpath_trace.Recorder
module Path_table = Hotpath_trace.Path_table
module Tablefmt = Hotpath_util.Tablefmt

type row = {
  name : string;
  paths : int;
  unique_heads : int;
  loop_heads : int;
  paper_paths : int;
  paper_unique_heads : int;
}

let compute ?scale () =
  List.map
    (fun (run : Runs.run) ->
       let paper = run.Runs.bench.Suite.b_paper in
       {
         name = run.Runs.bench.Suite.b_name;
         paths = Recorder.num_paths run.Runs.recorded;
         unique_heads =
           List.length (Path_table.unique_heads run.Runs.recorded.Recorder.table);
         loop_heads = Recorder.unique_loop_heads run.Runs.recorded;
         paper_paths = paper.Suite.pr_paths;
         paper_unique_heads = paper.Suite.pr_unique_heads;
       })
    (Runs.load_all ?scale ())

let to_table rows =
  let t =
    Tablefmt.create
      ~columns:
        [
          ("Benchmark", Tablefmt.Left);
          ("#Paths", Tablefmt.Right);
          ("#Unique heads", Tablefmt.Right);
          ("#Loop heads", Tablefmt.Right);
          ("paper #Paths", Tablefmt.Right);
          ("paper #Unique heads", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
       Tablefmt.add_row t
         [
           r.name;
           Tablefmt.cell_int r.paths;
           Tablefmt.cell_int r.unique_heads;
           Tablefmt.cell_int r.loop_heads;
           Tablefmt.cell_int r.paper_paths;
           Tablefmt.cell_int r.paper_unique_heads;
         ])
    rows;
  t

let render ?scale () = Tablefmt.render (to_table (compute ?scale ()))
