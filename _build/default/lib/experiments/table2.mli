(** Table 2 of the paper: number of distinct paths vs unique path heads.

    The ratio is what makes NET cheap: counters live only at (loop) heads,
    of which there are far fewer than dynamic paths. *)

type row = {
  name : string;
  paths : int;
  unique_heads : int;  (** Distinct head blocks over all recorded paths. *)
  loop_heads : int;  (** Heads ever arrived at via a backward taken transfer
                         — the counters NET actually allocates. *)
  paper_paths : int;
  paper_unique_heads : int;
}

val compute : ?scale:float -> unit -> row list

val to_table : row list -> Hotpath_util.Tablefmt.t

val render : ?scale:float -> unit -> string
