module Suite = Hotpath_workloads.Suite
module Recorder = Hotpath_trace.Recorder
module Hot_set = Hotpath_metrics.Hot_set

type run = {
  bench : Suite.benchmark;
  recorded : Recorder.t;
  freq : int array;
  hot : Hot_set.t;
}

let cache : (string * float, run) Hashtbl.t = Hashtbl.create 16

let load ?(scale = 1.0) bench =
  let key = (bench.Suite.b_name, scale) in
  match Hashtbl.find_opt cache key with
  | Some run -> run
  | None ->
    let recorded = Suite.record ~scale bench in
    let freq = Recorder.frequencies recorded in
    let hot =
      Hot_set.compute ~freq ~total_flow:(Recorder.num_instances recorded)
        ~threshold:Suite.hot_threshold
    in
    let run = { bench; recorded; freq; hot } in
    Hashtbl.add cache key run;
    run

let load_all ?(scale = 1.0) () = List.map (fun b -> load ~scale b) Suite.all

let clear_cache () = Hashtbl.reset cache
