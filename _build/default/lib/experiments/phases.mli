(** The phase-change study: the paper's Section 6.1 future work, measured.

    On the phased workload ({!Hotpath_workloads} [Suite.phased_demo]), NET
    is replayed under the {!Hotpath_metrics} [Phased] metrics with four
    retirement policies.  Expected shape:

    - {e no retirement} accumulates stale predictions (dead fragments)
      across phases but scores the best windowed hit rate when phases
      recur (old fragments are instantly hot again);
    - {e periodic flushing} caps staleness at the price of re-predicting
      after every flush;
    - {e spike-triggered flushing} (Dynamo's heuristic) pays that price
      only at actual transitions;
    - {e TTL retirement} keeps the set small continuously.

    The paper's open question — "at what granularity sensitivity to phase
    changes is most beneficial" — becomes a measurable trade-off between
    windowed hit rate and stale-fragment fraction. *)

type row = {
  r_policy : string;
  r_hit_rate : float;  (** Windowed, hot-flow-weighted. *)
  r_phase_noise_rate : float;
  r_stale_fraction : float;  (** Mean stale share of the live set. *)
  r_retired : int;
  r_live_final : int;  (** Prediction-set size at the last window. *)
}

val policies : (string * Hotpath_metrics.Phased.retirement) list

val compute : ?delay:int -> ?window:int -> ?max_paths:int -> unit -> row list

val to_table : row list -> Hotpath_util.Tablefmt.t

val render : ?delay:int -> ?window:int -> unit -> string
