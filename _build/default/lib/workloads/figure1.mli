(** The paper's Figure 1: five paths through one loop.

    Blocks A..J form a loop body with two-way decisions at A, C, D, G, H,
    I, J; the five executable paths and their bit-tracing signatures are
    exactly the paper's:

    {v
    ABDG  : A.0101     ABDGJ : A.01001    ABDHJ : A.01111
    ACEIJ : A.10111    ACFIJ : A.11111
    v}

    G and J close the loop back to A (backward taken branches); J's
    fallthrough leaves the loop.  Used by the quickstart/example programs
    and as a reference fixture in tests. *)

module Cfg = Hotpath_cfg.Cfg
module Behavior = Hotpath_vm.Behavior

type config = {
  p_a_to_c : float;  (** P(A branches to C) — bit 1 at A. *)
  p_c_to_f : float;  (** P(C branches to F). *)
  p_d_to_h : float;  (** P(D branches to H). *)
  p_g_loop : float;  (** P(G takes the back edge to A). *)
  p_j_loop : float;  (** P(J takes the back edge to A). *)
}

val dominant : config
(** ABDG strongly dominant — the "one or two dominant paths" regime where
    NET is statistically likely to pick the right tail. *)

val flat : config
(** Execution spread evenly over all five paths — the regime where no
    scheme can make a better prediction (Section 4.1). *)

val build : ?config:config -> unit -> Cfg.program * Behavior.t
(** Deterministic CFG; behaviour per [config] (default {!dominant}). *)

val block : string -> Cfg.block_id
(** Block id by paper label, ["A"].."J"] plus the exit ["K"].
    @raise Invalid_argument for other labels. *)

val label : Cfg.block_id -> string
(** Inverse of {!block} for this program's ids. *)

val paper_signatures : (string * string) list
(** [(path, signature)] as printed in the paper, e.g.
    [("ABDG", "A.0101")]. *)

val signature_of_blocks : string -> string
(** Expected signature string (in this library's [B<n>] notation) for a
    path given by its block labels, e.g. ["ABDG"].
    @raise Invalid_argument for labels outside the five paper paths. *)
