module Cfg = Hotpath_cfg.Cfg
module Behavior = Hotpath_vm.Behavior

type config = {
  p_a_to_c : float;
  p_c_to_f : float;
  p_d_to_h : float;
  p_g_loop : float;
  p_j_loop : float;
}

let dominant =
  { p_a_to_c = 0.1; p_c_to_f = 0.5; p_d_to_h = 0.1; p_g_loop = 0.9; p_j_loop = 0.98 }

let flat =
  (* Tuned so the five paths draw comparable shares:
     P(ABDG-ish) = 0.5 at A, then 0.5 at D, then G splits.  The loop exit
     (J fallthrough) is rare so a single run visits every path often. *)
  { p_a_to_c = 0.5; p_c_to_f = 0.5; p_d_to_h = 0.5; p_g_loop = 0.5; p_j_loop = 0.995 }

(* Layout: A=0 B=1 C=2 D=3 E=4 F=5 G=6 H=7 I=8 J=9 K=10(exit). *)
let labels = [| "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H"; "I"; "J"; "K" |]

let block name =
  let rec find i =
    if i >= Array.length labels then
      invalid_arg (Printf.sprintf "Figure1.block: unknown label %s" name)
    else if labels.(i) = name then i
    else find (i + 1)
  in
  find 0

let label id =
  if id < 0 || id >= Array.length labels then
    invalid_arg (Printf.sprintf "Figure1.label: unknown block %d" id)
  else labels.(id)

let build ?(config = dominant) () =
  let b = Cfg.Builder.create ~name:"figure1" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let ids = Array.map (fun _ -> Cfg.Builder.add_block b ~proc:p ~weight:2) labels in
  let a = ids.(0) and b1 = ids.(1) and c = ids.(2) and d = ids.(3) and e = ids.(4)
  and f = ids.(5) and g = ids.(6) and h = ids.(7) and i = ids.(8) and j = ids.(9)
  and k = ids.(10) in
  let branch blk ~taken ~fallthrough =
    Cfg.Builder.set_term b blk (Cfg.Branch { taken; fallthrough })
  in
  branch a ~taken:c ~fallthrough:b1;
  branch b1 ~taken:d ~fallthrough:c;  (* fallthrough never taken *)
  branch c ~taken:f ~fallthrough:e;
  branch d ~taken:h ~fallthrough:g;
  branch e ~taken:i ~fallthrough:f;  (* fallthrough never taken *)
  branch f ~taken:i ~fallthrough:g;  (* fallthrough never taken *)
  branch g ~taken:a ~fallthrough:j;  (* back edge *)
  branch h ~taken:j ~fallthrough:i;  (* fallthrough never taken *)
  branch i ~taken:j ~fallthrough:j;
  branch j ~taken:a ~fallthrough:k;  (* back edge *)
  Cfg.Builder.set_term b k Cfg.Exit;
  let program = Cfg.Builder.finish b in
  let behavior = Behavior.create program () in
  let set blk m = Behavior.set_branch behavior blk m in
  set a (Behavior.Bias config.p_a_to_c);
  set b1 (Behavior.Always true);
  set c (Behavior.Bias config.p_c_to_f);
  set d (Behavior.Bias config.p_d_to_h);
  set e (Behavior.Always true);
  set f (Behavior.Always true);
  set g (Behavior.Bias config.p_g_loop);
  set h (Behavior.Always true);
  set i (Behavior.Always true);
  set j (Behavior.Bias config.p_j_loop);
  (program, behavior)

let paper_signatures =
  [
    ("ABDG", "A.0101");
    ("ABDGJ", "A.01001");
    ("ABDHJ", "A.01111");
    ("ACEIJ", "A.10111");
    ("ACFIJ", "A.11111");
  ]

let signature_of_blocks path =
  match List.assoc_opt path paper_signatures with
  | None -> invalid_arg (Printf.sprintf "Figure1.signature_of_blocks: %s" path)
  | Some s ->
    (* Translate the paper's "A.bits" into this library's "B0.bits". *)
    let bits = String.sub s 2 (String.length s - 2) in
    Printf.sprintf "B%d.%s" (block "A") bits
