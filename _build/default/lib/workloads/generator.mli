(** Parametric synthetic-workload generator.

    Substitutes the paper's SpecInt95/deltablue binaries: every measurement
    in the paper is a function of the dynamic branch trace, so a workload
    is a CFG shape plus stochastic branch behaviour whose trace statistics
    (path counts, flow concentration, loop-head density, phase structure)
    are calibrated per benchmark to Tables 1 and 2.

    A workload is a set of {e loop archetypes}.  Each loop has a diamond
    chain as its body — [lk_branches] two-way decisions per iteration, each
    biased towards a dominant arm with probability [lk_bias] (0.5 = flat) —
    an optional helper call and an optional indirect dispatch in the body,
    and a latch taking the back edge with mean trip count [lk_iterations].
    Loops are distributed over [g_procs] worker procedures called in
    round-robin from an endless driver loop; execution stops when the
    recorder reaches its flow target. *)

module Cfg = Hotpath_cfg.Cfg
module Behavior = Hotpath_vm.Behavior

type loop_kind = {
  lk_branches : int;  (** Diamonds per body, 0..16; path signature bits. *)
  lk_bias : float;  (** Dominant-arm probability per diamond; 0.5 = flat. *)
  lk_iterations : int;  (** Mean back-edge trips per loop entry (>= 1). *)
  lk_loopback : float option;
      (** When set, overrides the iteration-derived back-edge probability.
          Values well below 1 give loops that mostly fall straight
          through. *)
  lk_fire_period : int option;
      (** When set (and taking precedence over [lk_loopback]), the back
          edge fires deterministically on every k-th execution.  Micro
          loops use this: they populate the program with path heads the way
          real binaries do (Table 2's head density) while their glue paths
          repeat exactly instead of minting fresh signatures. *)
  lk_calls : bool;  (** Body calls a small out-of-line helper. *)
  lk_indirect : int;  (** 0 = none; else an indirect dispatch with this fanout. *)
  lk_phase_flip : bool;
      (** Under a phase schedule, this loop's dominant arms flip direction
          at each phase boundary. *)
}

val loop :
  ?bias:float ->
  ?iterations:int ->
  ?loopback:float ->
  ?fire_period:int ->
  ?calls:bool ->
  ?indirect:int ->
  ?phase_flip:bool ->
  branches:int ->
  unit ->
  loop_kind
(** Convenience constructor; defaults: bias 0.9, iterations 50, no calls,
    no indirect, no phase flip. *)

val micro_loop : ?fire_period:int -> unit -> loop_kind
(** An empty-bodied loop whose back edge fires deterministically every
    [fire_period]-th execution (default 12): negligible flow, one extra
    path head. *)

type t = {
  g_name : string;
  g_loops : (int * loop_kind) list;  (** (count, kind) groups. *)
  g_procs : int;  (** Worker procedures the loops are spread over (>= 1). *)
  g_phase_steps : int option;
      (** [Some n]: phase boundaries every [n] executed blocks (loops with
          [lk_phase_flip] change dominant direction each phase). *)
}

val build : t -> seed:int -> Cfg.program * Behavior.t
(** Deterministic in [seed].  The program's driver loop is endless — run it
    under [max_paths] / [max_steps] (see
    {!Hotpath_trace.Recorder.record}). *)

val total_loops : t -> int

val validate : t -> (unit, string) result
(** Spec sanity: at least one loop, positive counts, branches within the
    signature cap, fanout >= 2 when an indirect is requested, procs >= 1. *)
