lib/workloads/correlated.ml: Array Hotpath_cfg Hotpath_trace Hotpath_vm List
