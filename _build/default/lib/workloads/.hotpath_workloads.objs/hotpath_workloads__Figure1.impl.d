lib/workloads/figure1.ml: Array Hotpath_cfg Hotpath_vm List Printf String
