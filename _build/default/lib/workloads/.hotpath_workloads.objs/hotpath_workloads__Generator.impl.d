lib/workloads/generator.ml: Array Hotpath_cfg Hotpath_util Hotpath_vm List Printf
