lib/workloads/figure1.mli: Hotpath_cfg Hotpath_vm
