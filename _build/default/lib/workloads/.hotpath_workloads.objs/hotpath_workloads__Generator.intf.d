lib/workloads/generator.mli: Hotpath_cfg Hotpath_vm
