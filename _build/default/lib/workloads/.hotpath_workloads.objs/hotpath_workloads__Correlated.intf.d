lib/workloads/correlated.mli: Hotpath_cfg Hotpath_trace Hotpath_vm
