lib/workloads/suite.mli: Generator Hotpath_trace
