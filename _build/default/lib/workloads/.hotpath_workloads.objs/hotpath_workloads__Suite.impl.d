lib/workloads/suite.ml: Generator Hotpath_trace Hotpath_util List Printf
