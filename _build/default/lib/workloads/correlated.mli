(** A loop with correlated branch triples — the workload on which
    constructing paths from isolated branch frequencies is {e guaranteed}
    to build a path that never executes.

    Each triple is three consecutive diamonds: the first two are
    independent with taken-probability [first_bias] (default 0.45, so each
    profiles as majority-fallthrough), and the third is taken iff at least
    one of the first two was taken (a 2-bit-history OR).  Marginally the
    third branch is taken [1 - (1-first_bias)^2] ≈ 70% of the time, so a
    Boa-style argmax construction ({!Hotpath_prediction} [Branch_profile])
    builds (fall, fall, taken) — a combination with probability exactly
    zero.  This makes the paper's Section 7 criticism concrete: paths
    built from isolated branch frequencies "may lead to paths that, as a
    whole, never execute".  NET, which grabs a tail that just executed, is
    immune by construction. *)

module Cfg = Hotpath_cfg.Cfg
module Behavior = Hotpath_vm.Behavior

val build :
  ?triples:int ->
  ?iterations:int ->
  ?first_bias:float ->
  unit ->
  Cfg.program * Behavior.t
(** [build ~triples ~iterations ~first_bias ()] — a single loop with
    [triples] correlated diamond triples (default 1), mean trip count
    [iterations] (default 2000).  [first_bias] must stay below 0.5 for the
    phantom guarantee.  Deterministic CFG; stochastic behaviour comes from
    the VM's seeded generator.
    @raise Invalid_argument when [triples < 1] or [first_bias] outside
    (0, 0.5). *)

val loop_head : Cfg.program -> Cfg.block_id
(** The loop head block of the built program (for assertions). *)

val phantom_signature : Cfg.program -> Hotpath_trace.Signature.t
(** The never-executing path a frequency-argmax construction builds from
    the loop head: fall, fall, taken for every triple, then the backward
    latch. *)
