module Cfg = Hotpath_cfg.Cfg
module Behavior = Hotpath_vm.Behavior
module Signature = Hotpath_trace.Signature

let build ?(triples = 1) ?(iterations = 2000) ?(first_bias = 0.45) () =
  if triples < 1 then invalid_arg "Correlated.build: triples must be >= 1";
  if first_bias <= 0.0 || first_bias >= 0.5 then
    invalid_arg "Correlated.build: first_bias must be in (0, 0.5)";
  let b = Cfg.Builder.create ~name:"correlated" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let entry = Cfg.Builder.add_block b ~proc:p ~weight:2 in
  let head = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let models = ref [] in
  let diamond model =
    let branch = Cfg.Builder.add_block b ~proc:p ~weight:2 in
    let arm_f = Cfg.Builder.add_block b ~proc:p ~weight:3 in
    let arm_t = Cfg.Builder.add_block b ~proc:p ~weight:3 in
    let join = Cfg.Builder.add_block b ~proc:p ~weight:1 in
    Cfg.Builder.set_term b branch (Cfg.Branch { taken = arm_t; fallthrough = arm_f });
    Cfg.Builder.set_term b arm_f (Cfg.Jump join);
    Cfg.Builder.set_term b arm_t (Cfg.Jump join);
    models := (branch, model) :: !models;
    (branch, join)
  in
  let cursor = ref head in
  let link src dst = Cfg.Builder.set_term b src (Cfg.Jump dst) in
  for _ = 1 to triples do
    let b1, j1 = diamond (Behavior.Bias first_bias) in
    let b2, j2 = diamond (Behavior.Bias first_bias) in
    (* Taken iff at least one of the two preceding outcomes (the low two
       history bits) was taken: indices 01, 10, 11 -> 1.0; 00 -> 0.0. *)
    let b3, j3 =
      diamond (Behavior.Correlated { bits = 2; taken_prob = [| 0.0; 1.0; 1.0; 1.0 |] })
    in
    link !cursor b1;
    link j1 b2;
    link j2 b3;
    cursor := j3
  done;
  let latch = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let exit_blk = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  link !cursor latch;
  Cfg.Builder.set_term b latch (Cfg.Branch { taken = head; fallthrough = exit_blk });
  models := (latch, Behavior.Bias (1.0 -. (1.0 /. float_of_int iterations))) :: !models;
  Cfg.Builder.set_term b exit_blk Cfg.Exit;
  Cfg.Builder.set_term b entry (Cfg.Jump head);
  let program = Cfg.Builder.finish b in
  let behavior = Behavior.create program () in
  List.iter (fun (blk, m) -> Behavior.set_branch behavior blk m) !models;
  (program, behavior)

let loop_head (program : Cfg.program) =
  match (Cfg.block program (Cfg.entry_block program)).Cfg.term with
  | Cfg.Jump head -> head
  | _ -> invalid_arg "Correlated.loop_head: unexpected program shape"

let phantom_signature (program : Cfg.program) =
  let head = loop_head program in
  let sigb = Signature.Builder.create ~head in
  (* Per triple the per-branch argmax outcomes are (fall, fall, taken) —
     a combination with probability zero — and the latch bit is taken.
     Three diamonds of four blocks per triple, plus entry/head and
     latch/exit, recover the triple count from the block total. *)
  let n_triples = (Array.length program.Cfg.blocks - 4) / 12 in
  for _ = 1 to n_triples do
    Signature.Builder.add_branch sigb ~taken:false;
    Signature.Builder.add_branch sigb ~taken:false;
    Signature.Builder.add_branch sigb ~taken:true
  done;
  Signature.Builder.add_branch sigb ~taken:true;
  Signature.Builder.freeze sigb
