(** Growable arrays.

    OCaml 5.1 predates [Dynarray]; this is the small subset the reproduction
    needs: amortized O(1) push, O(1) read/write, and conversion to a plain
    array.  Not thread-safe. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty vector.  [capacity] pre-sizes the backing store. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append, growing geometrically when full. *)

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when out of bounds. *)

val last : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val pop : 'a t -> 'a
(** Remove and return the last element.  @raise Invalid_argument when
    empty. *)

val clear : 'a t -> unit
(** Drop all elements (keeps capacity). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array
(** Fresh array of the current contents. *)

val of_array : 'a array -> 'a t

val to_list : 'a t -> 'a list

val exists : ('a -> bool) -> 'a t -> bool
