type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer: xor-shift-multiply mixing of the advanced state. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next_int64 t }

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Masked rejection sampling keeps the draw unbiased. *)
  let mask =
    let rec widen m = if m >= bound - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let v = Int64.to_int (next_int64 t) land max_int land mask in
    if v < bound then v else draw ()
  in
  draw ()

let float t =
  (* 53 high-quality bits scaled to [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t ~bound:(Array.length arr))

let pick_weighted t ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Prng.pick_weighted: empty weights";
  let total = Array.fold_left (fun acc w ->
      if w < 0.0 then invalid_arg "Prng.pick_weighted: negative weight";
      acc +. w)
      0.0 weights
  in
  if total <= 0.0 then invalid_arg "Prng.pick_weighted: zero total weight";
  let target = float t *. total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
