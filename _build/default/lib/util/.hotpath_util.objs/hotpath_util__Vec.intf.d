lib/util/vec.mli:
