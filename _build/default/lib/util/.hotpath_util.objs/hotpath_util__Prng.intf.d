lib/util/prng.mli:
