lib/util/tablefmt.mli:
