lib/util/stats.mli:
