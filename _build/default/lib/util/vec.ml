type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  capacity_hint : int;  (* honoured at the first allocation *)
  (* [dummy] fills unused slots after [pop]/[clear] so values can be
     collected; it is the first pushed element and is never observed. *)
  mutable dummy : 'a option;
}

let create ?(capacity = 0) () =
  { data = [||]; len = 0; capacity_hint = max 0 capacity; dummy = None }

let length t = t.len

let is_empty t = t.len = 0

let grow t needed =
  let cap = Array.length t.data in
  let cap' = max (max needed t.capacity_hint) (max 8 (cap * 2)) in
  match t.dummy with
  | None -> assert false
  | Some d ->
    let data' = Array.make cap' d in
    Array.blit t.data 0 data' 0 t.len;
    t.data <- data'

let push t x =
  if t.dummy = None then t.dummy <- Some x;
  if t.len = Array.length t.data then grow t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i op =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds [0,%d)" op i t.len)

let get t i =
  check t i "get";
  t.data.(i)

let set t i x =
  check t i "set";
  t.data.(i) <- x

let last t =
  if t.len = 0 then invalid_arg "Vec.last: empty";
  t.data.(t.len - 1)

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  let x = t.data.(t.len - 1) in
  (match t.dummy with Some d -> t.data.(t.len - 1) <- d | None -> ());
  t.len <- t.len - 1;
  x

let clear t =
  (match t.dummy with
   | Some d -> for i = 0 to t.len - 1 do t.data.(i) <- d done
   | None -> ());
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let of_array arr =
  let t = create () in
  Array.iter (push t) arr;
  t

let to_list t = Array.to_list (to_array t)

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0
