(** Deterministic pseudo-random number generation.

    All randomness in the reproduction flows through this module so that a
    given seed yields byte-identical workloads, traces, and experiment rows
    on every run.  The generator is splitmix64 (Steele, Lea & Flood 2014): a
    64-bit state advanced by a Weyl constant and finalized with a
    variant of the MurmurHash3 mixer.  It is fast, has a full 2^64 period,
    and supports cheap splitting into independent streams. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Generators created from equal
    seeds produce equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay [t]'s future
    stream from this point. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator seeded from the drawn
    value, statistically independent of [t]'s subsequent output.  Used to
    give each benchmark / procedure / branch its own stream so that local
    changes do not perturb unrelated draws. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> p:float -> bool
(** [bool t ~p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.  @raise Invalid_argument on an
    empty array. *)

val pick_weighted : t -> weights:float array -> int
(** [pick_weighted t ~weights] draws an index with probability proportional
    to its weight.  Weights must be non-negative with a positive sum.
    @raise Invalid_argument otherwise. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
