type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  width : int;
  mutable rows : row list;  (* reversed *)
}

let create ~columns =
  {
    headers = List.map fst columns;
    aligns = List.map snd columns;
    width = List.length columns;
    rows = [];
  }

let add_row t cells =
  if List.length cells <> t.width then
    invalid_arg
      (Printf.sprintf "Tablefmt.add_row: expected %d cells, got %d" t.width
         (List.length cells));
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let data_rows t =
  List.rev t.rows

let column_widths t =
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
        List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    (data_rows t);
  widths

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let widths = column_widths t in
  let buf = Buffer.create 1024 in
  let emit_cells cells =
    let line = Buffer.create 80 in
    List.iteri
      (fun i c ->
         if i > 0 then Buffer.add_string line "  ";
         let align = List.nth t.aligns i in
         Buffer.add_string line (pad align widths.(i) c))
      cells;
    (* Trim trailing padding so lines do not end in spaces. *)
    let s = Buffer.contents line in
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do decr n done;
    Buffer.add_string buf (String.sub s 0 !n);
    Buffer.add_char buf '\n'
  in
  let rule () =
    Array.iteri
      (fun i w ->
         if i > 0 then Buffer.add_string buf "  ";
         Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  rule ();
  List.iter
    (function Separator -> rule () | Cells cells -> emit_cells cells)
    (data_rows t);
  Buffer.contents buf

let csv_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') s
  in
  if not needs_quote then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
         if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let render_csv t =
  let buf = Buffer.create 1024 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_field cells));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter (function Separator -> () | Cells cells -> emit cells) (data_rows t);
  Buffer.contents buf

let cell_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
       if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
       Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cell_float ?(digits = 1) x = Printf.sprintf "%.*f" digits x

let cell_pct ?(digits = 1) x = Printf.sprintf "%.*f%%" digits x
