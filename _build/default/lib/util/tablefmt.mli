(** Plain-text and CSV rendering of experiment tables.

    Every table and figure reproduction prints through this module so that
    the CLI, the benchmark harness, and EXPERIMENTS.md agree on formatting. *)

type align = Left | Right

type t
(** A table under construction: a header row plus data rows of equal
    width. *)

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given header labels and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Append a data row.  @raise Invalid_argument if the width differs from
    the header. *)

val add_separator : t -> unit
(** Append a horizontal rule (rendered in text output, skipped in CSV). *)

val render : t -> string
(** Box-drawing-free aligned text rendering, ready for a terminal. *)

val render_csv : t -> string
(** RFC-4180-style CSV (quotes fields containing commas or quotes). *)

val cell_int : int -> string
(** Integer with thousands separators, e.g. [12,345]. *)

val cell_float : ?digits:int -> float -> string
(** Fixed-point float, default 1 digit. *)

val cell_pct : ?digits:int -> float -> string
(** Percentage with a trailing [%], default 1 digit. *)
