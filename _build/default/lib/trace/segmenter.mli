(** Streaming path segmentation.

    Turns a VM transfer stream into the paper's interprocedural forward
    paths, one completed path at a time — the shared core of the offline
    {!Recorder} and of online consumers (the live Dynamo driver) that must
    see each path the moment it completes, without a recording step.

    Path-end rules (Section 3 of the paper; see {!Path}): backward taken
    transfers, returns matching an on-path call, the signature cap, and
    program exit.  A forward return the path extends across contributes
    its dynamic target to the signature's indirect list (see DESIGN.md
    §5). *)

module Cfg = Hotpath_cfg.Cfg

type completed = {
  c_signature : Signature.t;
  c_blocks : Cfg.block_id array;
  c_n_instrs : int;
  c_n_branches : int;
  c_end_kind : Path.end_kind;
  c_arrival : Path.head_kind;  (** How this path's head was reached. *)
}

type t

val create : Cfg.program -> t
(** Segmentation state positioned at the program entry (arrival kind
    [Entry]). *)

val feed : t -> Hotpath_vm.Vm.transfer -> completed option
(** Consume one transfer (in execution order); [Some c] when it completed
    a path.  After a [T_exit] transfer the segmenter yields the final path
    and any further [feed] is rejected.
    @raise Invalid_argument when fed past program exit. *)

val in_flight_blocks : t -> int
(** Blocks accumulated on the current partial path (0 after exit). *)
