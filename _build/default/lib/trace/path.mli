(** Interprocedural forward paths (Section 3 of the paper).

    A path starts at the target of a backward taken control transfer (or at
    the program entry, or as a continuation after a matched return / a
    capped path), extends across forward calls and returns, and ends at

    - the next backward taken transfer (loop back edge, backward jump,
      backward indirect, backward call — the recursion case — or backward
      return), or
    - the return matching a call taken {e on} the path, or
    - the {!Signature.max_branches} cap, or
    - program termination.

    The head is the path's first block; the tail is the rest — the part NET
    predicts speculatively. *)

module Cfg = Hotpath_cfg.Cfg

type head_kind =
  | Loop_head
      (** Reached via a backward taken transfer — the only arrivals NET
          profiles. *)
  | Entry  (** Program entry. *)
  | Continuation  (** Follows a matched return or a capped path. *)

type end_kind =
  | Backward_transfer  (** Ended by a backward taken transfer. *)
  | Matched_return  (** Ended by the return matching an on-path call. *)
  | Cap  (** Hit the branch cap. *)
  | Program_end  (** Program exit or fuel exhaustion. *)

type t = {
  id : int;  (** Dense id assigned by the {!Path_table}. *)
  signature : Signature.t;
  blocks : Cfg.block_id array;  (** Full block sequence, head first. *)
  n_instrs : int;  (** Sum of block weights — the path's dynamic size. *)
  n_branches : int;  (** Conditional branches on the path. *)
  end_kind : end_kind;
}

val head : t -> Cfg.block_id

val tail : t -> Cfg.block_id array
(** All blocks after the head (may be empty for a single-block path). *)

val pp : Format.formatter -> t -> unit

val head_kind_to_string : head_kind -> string

val end_kind_to_string : end_kind -> string

val divergence : t -> t -> int option
(** [divergence a b] is the index of the first differing block, or [None]
    when one block sequence is a prefix of the other (including equality).
    The Dynamo simulator uses this to charge partial fragment execution
    when the predicted path and the executed path share a prefix. *)
