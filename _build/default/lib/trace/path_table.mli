(** Interned path table: signature -> dense path id.

    The table is what a bit-tracing path profiler maintains at runtime; its
    size is the counter-space cost of path-profile-based prediction
    (Section 5.2, Table 2, Figure 4 of the paper). *)

module Cfg = Hotpath_cfg.Cfg

type t

val create : unit -> t

val size : t -> int
(** Number of distinct paths interned. *)

val intern :
  t ->
  Signature.t ->
  blocks:Cfg.block_id array ->
  n_instrs:int ->
  n_branches:int ->
  end_kind:Path.end_kind ->
  int
(** Id of the path with this signature, allocating on first sight.  The
    descriptive fields are taken from the first occurrence (subsequent
    occurrences of the same signature necessarily describe the same block
    sequence; this is asserted). *)

val find : t -> Signature.t -> int option

val path : t -> int -> Path.t
(** @raise Invalid_argument for an unknown id. *)

val paths : t -> Path.t array
(** Dense array indexed by path id (fresh copy). *)

val iter : (Path.t -> unit) -> t -> unit
(** In increasing id order. *)

val unique_heads : t -> Cfg.block_id list
(** Distinct head blocks, ascending — the counter set NET would allocate if
    every head were a loop head (the paper's Table 2 counts heads of
    recorded paths). *)
