module Cfg = Hotpath_cfg.Cfg

type head_kind = Loop_head | Entry | Continuation

type end_kind = Backward_transfer | Matched_return | Cap | Program_end

type t = {
  id : int;
  signature : Signature.t;
  blocks : Cfg.block_id array;
  n_instrs : int;
  n_branches : int;
  end_kind : end_kind;
}

let head t = t.blocks.(0)

let tail t = Array.sub t.blocks 1 (Array.length t.blocks - 1)

let head_kind_to_string = function
  | Loop_head -> "loop-head"
  | Entry -> "entry"
  | Continuation -> "continuation"

let end_kind_to_string = function
  | Backward_transfer -> "backward-transfer"
  | Matched_return -> "matched-return"
  | Cap -> "cap"
  | Program_end -> "program-end"

let pp ppf t =
  Format.fprintf ppf "@[<h>path#%d %a blocks=[%s] instrs=%d branches=%d end=%s@]" t.id
    Signature.pp t.signature
    (String.concat ";" (Array.to_list (Array.map string_of_int t.blocks)))
    t.n_instrs t.n_branches
    (end_kind_to_string t.end_kind)

let divergence a b =
  let n = min (Array.length a.blocks) (Array.length b.blocks) in
  let rec scan i =
    if i = n then None
    else if a.blocks.(i) <> b.blocks.(i) then Some i
    else scan (i + 1)
  in
  scan 0
