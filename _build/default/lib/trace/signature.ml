module Cfg = Hotpath_cfg.Cfg

type t = {
  shead : Cfg.block_id;
  slen : int;
  sbits : int64;  (* bit i = outcome of i-th branch *)
  sindirects : Cfg.block_id list;  (* execution order *)
}

let max_branches = 62

let head s = s.shead

let length s = s.slen

let bit s i =
  if i < 0 || i >= s.slen then invalid_arg "Signature.bit: index out of range";
  Int64.(logand (shift_right_logical s.sbits i) 1L) = 1L

let history s = s.sbits

let indirect_targets s = s.sindirects

let equal a b =
  a.shead = b.shead && a.slen = b.slen
  && Int64.equal a.sbits b.sbits
  && List.equal Int.equal a.sindirects b.sindirects

let compare a b =
  let c = Int.compare a.shead b.shead in
  if c <> 0 then c
  else
    let c = Int.compare a.slen b.slen in
    if c <> 0 then c
    else
      let c = Int64.compare a.sbits b.sbits in
      if c <> 0 then c else List.compare Int.compare a.sindirects b.sindirects

let hash s =
  let h = ref (s.shead * 0x9E3779B1) in
  h := (!h * 31) + s.slen;
  h := (!h * 31) + Int64.to_int s.sbits;
  h := (!h * 31) + Int64.to_int (Int64.shift_right_logical s.sbits 31);
  List.iter (fun t -> h := (!h * 31) + t) s.sindirects;
  !h land max_int

let to_string s =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (Printf.sprintf "B%d." s.shead);
  for i = 0 to s.slen - 1 do
    Buffer.add_char buf (if bit s i then '1' else '0')
  done;
  (match s.sindirects with
   | [] -> ()
   | targets ->
     Buffer.add_string buf ",[";
     List.iteri
       (fun i t ->
          if i > 0 then Buffer.add_char buf ';';
          Buffer.add_string buf (Printf.sprintf "B%d" t))
       targets;
     Buffer.add_char buf ']');
  Buffer.contents buf

let pp ppf s = Format.pp_print_string ppf (to_string s)

module Builder = struct
  type t = {
    mutable bhead : Cfg.block_id;
    mutable blen : int;
    mutable bbits : int64;
    mutable bindirects : Cfg.block_id list;  (* reversed *)
  }

  let create ~head = { bhead = head; blen = 0; bbits = 0L; bindirects = [] }

  let reset t ~head =
    t.bhead <- head;
    t.blen <- 0;
    t.bbits <- 0L;
    t.bindirects <- []

  let add_branch t ~taken =
    if t.blen >= max_branches then
      invalid_arg "Signature.Builder.add_branch: path branch cap exceeded";
    if taken then t.bbits <- Int64.(logor t.bbits (shift_left 1L t.blen));
    t.blen <- t.blen + 1

  let add_indirect t ~target = t.bindirects <- target :: t.bindirects

  let branch_count t = t.blen

  let freeze t =
    {
      shead = t.bhead;
      slen = t.blen;
      sbits = t.bbits;
      sindirects = List.rev t.bindirects;
    }
end
