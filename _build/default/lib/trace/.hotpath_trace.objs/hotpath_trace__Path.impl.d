lib/trace/path.ml: Array Format Hotpath_cfg Signature String
