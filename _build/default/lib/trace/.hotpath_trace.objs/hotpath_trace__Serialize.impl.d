lib/trace/serialize.ml: Array Buffer Bytes Char Fun Hotpath_cfg Hotpath_vm Int32 Int64 List Path Path_table Printf Recorder Signature String
