lib/trace/segmenter.ml: Array Hotpath_cfg Hotpath_vm List Path Signature
