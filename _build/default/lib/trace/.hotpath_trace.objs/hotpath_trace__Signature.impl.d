lib/trace/signature.ml: Buffer Format Hotpath_cfg Int Int64 List Printf
