lib/trace/serialize.mli: Buffer Recorder
