lib/trace/recorder.mli: Bytes Hashtbl Hotpath_cfg Hotpath_util Hotpath_vm Path Path_table
