lib/trace/segmenter.mli: Hotpath_cfg Hotpath_vm Path Signature
