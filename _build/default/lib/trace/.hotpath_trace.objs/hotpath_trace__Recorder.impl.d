lib/trace/recorder.ml: Array Buffer Bytes Char Hashtbl Hotpath_cfg Hotpath_util Hotpath_vm List Option Path Path_table Printf Segmenter
