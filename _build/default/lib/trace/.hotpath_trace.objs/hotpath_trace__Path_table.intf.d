lib/trace/path_table.mli: Hotpath_cfg Path Signature
