lib/trace/signature.mli: Format Hotpath_cfg
