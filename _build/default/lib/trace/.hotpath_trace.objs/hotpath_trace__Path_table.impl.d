lib/trace/path_table.ml: Array Hashtbl Hotpath_cfg Hotpath_util Int List Path Printf Signature
