lib/trace/path.mli: Format Hotpath_cfg Signature
