(** Bit-tracing path signatures.

    Section 2 of the paper identifies a path by
    [<start_address>.<history>,<indirect_branch_target_list>]: the start
    address, one bit per conditional branch on the path (1 = taken, in
    execution order), and the targets of any indirect branches.  Signatures
    are built on the fly as the program executes — no preparatory static
    analysis — which is why bit tracing is the natural substrate for an
    online scheme.

    Paths are capped at {!max_branches} conditional branches (mirroring
    trace-length caps in real systems such as Dynamo); the history then
    fits one [int64]. *)

module Cfg = Hotpath_cfg.Cfg

type t
(** Immutable signature, usable as a hash-table key. *)

val max_branches : int
(** Upper bound on conditional branches per path (62). *)

val head : t -> Cfg.block_id
(** The start address. *)

val length : t -> int
(** Number of conditional branches recorded. *)

val bit : t -> int -> bool
(** [bit s i] — outcome of the [i]-th branch on the path (0-based, in
    execution order).  @raise Invalid_argument when out of range. *)

val history : t -> int64
(** Raw history word; bit [i] is the [i]-th branch outcome. *)

val indirect_targets : t -> Cfg.block_id list
(** Indirect-branch targets in execution order (usually empty). *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** E.g. ["B5.0101,[B9]"] — head, branch outcomes in execution order
    (leftmost = first), indirect targets if any.  Matches the paper's
    [A.0101] notation for Figure 1. *)

(** Incremental construction during execution: one [add_branch] per
    conditional branch (a shift-or, the profiling operation whose cost the
    paper charges to bit tracing) and one [add_indirect] per indirect
    branch. *)
module Builder : sig
  type signature := t

  type t

  val create : head:Cfg.block_id -> t

  val reset : t -> head:Cfg.block_id -> unit
  (** Reuse the builder for the next path. *)

  val add_branch : t -> taken:bool -> unit
  (** @raise Invalid_argument when {!max_branches} bits are already
      recorded — callers must end the path at the cap. *)

  val add_indirect : t -> target:Cfg.block_id -> unit

  val branch_count : t -> int

  val freeze : t -> signature
  (** Immutable snapshot; the builder remains usable. *)
end
