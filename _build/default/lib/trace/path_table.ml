module Cfg = Hotpath_cfg.Cfg
module Vec = Hotpath_util.Vec

module Tbl = Hashtbl.Make (struct
    type t = Signature.t

    let equal = Signature.equal

    let hash = Signature.hash
  end)

type t = { by_sig : int Tbl.t; by_id : Path.t Vec.t }

let create () = { by_sig = Tbl.create 1024; by_id = Vec.create () }

let size t = Vec.length t.by_id

let intern t signature ~blocks ~n_instrs ~n_branches ~end_kind =
  match Tbl.find_opt t.by_sig signature with
  | Some id ->
    (* Bit-tracing signatures determine the block sequence (see
       DESIGN.md §5); a mismatch would indicate a recorder bug. *)
    assert (Array.length (Vec.get t.by_id id).Path.blocks = Array.length blocks);
    id
  | None ->
    let id = Vec.length t.by_id in
    Tbl.add t.by_sig signature id;
    Vec.push t.by_id { Path.id; signature; blocks; n_instrs; n_branches; end_kind };
    id

let find t signature = Tbl.find_opt t.by_sig signature

let path t id =
  if id < 0 || id >= Vec.length t.by_id then
    invalid_arg (Printf.sprintf "Path_table.path: unknown id %d" id);
  Vec.get t.by_id id

let paths t = Vec.to_array t.by_id

let iter f t = Vec.iter f t.by_id

let unique_heads t =
  let heads = Hashtbl.create 64 in
  Vec.iter (fun p -> Hashtbl.replace heads (Path.head p) ()) t.by_id;
  List.sort Int.compare (Hashtbl.fold (fun h () acc -> h :: acc) heads [])
