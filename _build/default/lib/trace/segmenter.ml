module Cfg = Hotpath_cfg.Cfg
module Vm = Hotpath_vm.Vm

type completed = {
  c_signature : Signature.t;
  c_blocks : Cfg.block_id array;
  c_n_instrs : int;
  c_n_branches : int;
  c_end_kind : Path.end_kind;
  c_arrival : Path.head_kind;
}

type t = {
  program : Cfg.program;
  signature : Signature.Builder.t;
  mutable blocks : Cfg.block_id list;  (* reversed *)
  mutable n_blocks : int;
  mutable n_instrs : int;
  mutable calls_on_path : int;
  mutable arrival : Path.head_kind;
  mutable exited : bool;
}

let weight t b = (Cfg.block t.program b).Cfg.weight

let create program =
  let entry = Cfg.entry_block program in
  {
    program;
    signature = Signature.Builder.create ~head:entry;
    blocks = [ entry ];
    n_blocks = 1;
    n_instrs = (Cfg.block program entry).Cfg.weight;
    calls_on_path = 0;
    arrival = Path.Entry;
    exited = false;
  }

let finish t end_kind =
  {
    c_signature = Signature.Builder.freeze t.signature;
    c_blocks = Array.of_list (List.rev t.blocks);
    c_n_instrs = t.n_instrs;
    c_n_branches = Signature.Builder.branch_count t.signature;
    c_end_kind = end_kind;
    c_arrival = t.arrival;
  }

let start t head arrival =
  Signature.Builder.reset t.signature ~head;
  t.blocks <- [ head ];
  t.n_blocks <- 1;
  t.n_instrs <- weight t head;
  t.calls_on_path <- 0;
  t.arrival <- arrival

let feed t (tr : Vm.transfer) =
  if t.exited then invalid_arg "Segmenter.feed: program already exited";
  (* Signature contributions. *)
  (match tr.Vm.kind with
   | Vm.T_branch { taken } -> Signature.Builder.add_branch t.signature ~taken
   | Vm.T_indirect -> begin
       match tr.Vm.dst with
       | Some target -> Signature.Builder.add_indirect t.signature ~target
       | None -> assert false
     end
   | Vm.T_call -> t.calls_on_path <- t.calls_on_path + 1
   | Vm.T_return | Vm.T_jump | Vm.T_exit -> ());
  let matched_return =
    match tr.Vm.kind with
    | Vm.T_return when t.calls_on_path > 0 ->
      t.calls_on_path <- t.calls_on_path - 1;
      true
    | _ -> false
  in
  let ended =
    match tr.Vm.kind with
    | Vm.T_exit -> Some Path.Program_end
    | _ when tr.Vm.backward -> Some Path.Backward_transfer
    | _ when matched_return -> Some Path.Matched_return
    | Vm.T_branch _
      when Signature.Builder.branch_count t.signature = Signature.max_branches ->
      Some Path.Cap
    | _ -> None
  in
  (* A crossed (forward, unmatched) return is an indirect branch: its
     dynamic target disambiguates paths from shared callees. *)
  (match tr.Vm.kind, ended, tr.Vm.dst with
   | Vm.T_return, None, Some target -> Signature.Builder.add_indirect t.signature ~target
   | _ -> ());
  match ended, tr.Vm.dst with
  | Some end_kind, Some dst ->
    let c = finish t end_kind in
    start t dst (if tr.Vm.backward then Path.Loop_head else Path.Continuation);
    Some c
  | Some end_kind, None ->
    let c = finish t end_kind in
    t.exited <- true;
    t.blocks <- [];
    t.n_blocks <- 0;
    Some c
  | None, Some dst ->
    t.blocks <- dst :: t.blocks;
    t.n_blocks <- t.n_blocks + 1;
    t.n_instrs <- t.n_instrs + weight t dst;
    None
  | None, None -> assert false

let in_flight_blocks t = t.n_blocks
