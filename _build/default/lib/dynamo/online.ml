module Cfg = Hotpath_cfg.Cfg
module Vm = Hotpath_vm.Vm
module Segmenter = Hotpath_trace.Segmenter
module Path_table = Hotpath_trace.Path_table

type outcome = { o_result : Engine.result; o_instances : int; o_paths : int }

let run ?(max_steps = max_int) ?(max_paths = max_int) ?max_stack ~config program
    behavior ~rng =
  let vm = Vm.create ?max_stack program behavior ~rng in
  let seg = Segmenter.create program in
  let table = Path_table.create () in
  let stepper =
    Engine.Stepper.create config ~program ~lookup:(Path_table.path table)
  in
  let instances = ref 0 in
  let rec loop () =
    if !instances >= max_paths || Vm.blocks_executed vm >= max_steps then ()
    else
      match Vm.step vm with
      | None -> ()
      | Some tr ->
        (match Segmenter.feed seg tr with
         | Some c ->
           let id =
             Path_table.intern table c.Segmenter.c_signature
               ~blocks:c.Segmenter.c_blocks ~n_instrs:c.Segmenter.c_n_instrs
               ~n_branches:c.Segmenter.c_n_branches ~end_kind:c.Segmenter.c_end_kind
           in
           incr instances;
           Engine.Stepper.step stepper ~path:(Path_table.path table id)
             ~arrival:c.Segmenter.c_arrival
         | None -> ());
        if tr.Vm.kind = Vm.T_exit then () else loop ()
  in
  loop ();
  {
    o_result = Engine.Stepper.finalize stepper;
    o_instances = !instances;
    o_paths = Path_table.size table;
  }
