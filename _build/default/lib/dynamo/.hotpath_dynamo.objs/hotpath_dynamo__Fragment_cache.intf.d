lib/dynamo/fragment_cache.mli: Hotpath_cfg Hotpath_trace
