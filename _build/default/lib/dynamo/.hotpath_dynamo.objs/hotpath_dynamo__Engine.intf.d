lib/dynamo/engine.mli: Cost_model Format Fragment_cache Hotpath_cfg Hotpath_prediction Hotpath_trace
