lib/dynamo/fragment_cache.ml: Hashtbl Hotpath_cfg Hotpath_trace List Option
