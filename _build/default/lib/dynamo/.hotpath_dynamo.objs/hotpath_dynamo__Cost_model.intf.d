lib/dynamo/cost_model.mli: Format
