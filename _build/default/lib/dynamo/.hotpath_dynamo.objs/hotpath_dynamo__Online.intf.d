lib/dynamo/online.mli: Engine Hotpath_cfg Hotpath_util Hotpath_vm
