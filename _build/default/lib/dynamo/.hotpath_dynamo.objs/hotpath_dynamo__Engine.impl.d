lib/dynamo/engine.ml: Array Cost_model Format Fragment_cache Hashtbl Hotpath_cfg Hotpath_prediction Hotpath_trace Hotpath_util List Option
