lib/dynamo/online.ml: Engine Hotpath_cfg Hotpath_trace Hotpath_vm
