lib/dynamo/cost_model.ml: Format List
