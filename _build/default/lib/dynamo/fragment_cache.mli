(** The software code cache: optimized single-path fragments.

    A fragment is the optimized copy of one predicted path, keyed both by
    its path id (exact hit: the whole instance runs in the cache) and by
    its head block (partial hit: execution follows the fragment until the
    executed path diverges, then exits to the interpreter).  The first
    fragment installed at a head owns that head's cache entry point,
    mirroring Dynamo's counter-to-fragment patching. *)

module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path

type fragment = {
  fr_path : int;  (** Path id this fragment was built from. *)
  fr_head : Cfg.block_id;
  fr_blocks : Cfg.block_id array;
  fr_instrs : int;
}

val fragment_of_path : Path.t -> fragment

type eviction =
  | Reject_when_full
      (** [insert] reports [`Full]; the engine responds with a whole-cache
          flush, as the original Dynamo did. *)
  | Evict_lru
      (** Make room by evicting the least-recently-entered fragment
          ([find_path]/[find_head] hits refresh recency). *)

type t

val create : ?capacity:int -> ?eviction:eviction -> unit -> t
(** [capacity] bounds the number of resident fragments (default 8192);
    [eviction] defaults to [Reject_when_full]. *)

val size : t -> int

val is_full : t -> bool

val insert : t -> fragment -> [ `Inserted | `Duplicate | `Full | `Evicted of fragment ]
(** Install a fragment.  [`Duplicate] when its path already has one.  At
    capacity: [`Full] (nothing inserted) under [Reject_when_full], or
    [`Evicted victim] (victim removed, fragment inserted) under
    [Evict_lru]. *)

val find_path : t -> int -> fragment option
(** Exact fragment for a path id. *)

val find_head : t -> Cfg.block_id -> fragment list
(** Every resident fragment starting at this head (most recent first);
    empty when the head has no cache entry point. *)

val flush : t -> unit
(** Drop every fragment (the phase-transition response of Section 6.1). *)

val flush_count : t -> int

val inserted_total : t -> int
(** Fragments ever created, across flushes. *)

val evicted_total : t -> int
(** Fragments removed by LRU eviction. *)
