module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path

type fragment = {
  fr_path : int;
  fr_head : Cfg.block_id;
  fr_blocks : Cfg.block_id array;
  fr_instrs : int;
}

let fragment_of_path (p : Path.t) =
  {
    fr_path = p.Path.id;
    fr_head = Path.head p;
    fr_blocks = p.Path.blocks;
    fr_instrs = p.Path.n_instrs;
  }

type eviction = Reject_when_full | Evict_lru

type t = {
  capacity : int;
  eviction : eviction;
  by_path : (int, fragment) Hashtbl.t;
  by_head : (Cfg.block_id, fragment list) Hashtbl.t;
  stamps : (int, int) Hashtbl.t;  (* path id -> last-use clock *)
  mutable clock : int;
  mutable flushes : int;
  mutable inserted : int;
  mutable evicted : int;
}

let create ?(capacity = 8192) ?(eviction = Reject_when_full) () =
  if capacity < 1 then invalid_arg "Fragment_cache.create: capacity must be >= 1";
  { capacity; eviction; by_path = Hashtbl.create 256; by_head = Hashtbl.create 256;
    stamps = Hashtbl.create 256; clock = 0; flushes = 0; inserted = 0; evicted = 0 }

let size t = Hashtbl.length t.by_path

let is_full t = size t >= t.capacity

let touch t pid =
  t.clock <- t.clock + 1;
  Hashtbl.replace t.stamps pid t.clock

let remove t (fr : fragment) =
  Hashtbl.remove t.by_path fr.fr_path;
  Hashtbl.remove t.stamps fr.fr_path;
  match Hashtbl.find_opt t.by_head fr.fr_head with
  | None -> ()
  | Some frs -> (
      match List.filter (fun f -> f.fr_path <> fr.fr_path) frs with
      | [] -> Hashtbl.remove t.by_head fr.fr_head
      | rest -> Hashtbl.replace t.by_head fr.fr_head rest)

let lru_victim t =
  let best = ref None in
  Hashtbl.iter
    (fun pid stamp ->
       match !best with
       | Some (_, s) when s <= stamp -> ()
       | _ -> best := Some (pid, stamp))
    t.stamps;
  match !best with
  | None -> None
  | Some (pid, _) -> Hashtbl.find_opt t.by_path pid

let do_insert t fr =
  Hashtbl.add t.by_path fr.fr_path fr;
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.by_head fr.fr_head) in
  Hashtbl.replace t.by_head fr.fr_head (fr :: existing);
  touch t fr.fr_path;
  t.inserted <- t.inserted + 1

let insert t fr =
  if Hashtbl.mem t.by_path fr.fr_path then `Duplicate
  else if not (is_full t) then begin
    do_insert t fr;
    `Inserted
  end
  else
    match t.eviction with
    | Reject_when_full -> `Full
    | Evict_lru -> (
        match lru_victim t with
        | None -> `Full
        | Some victim ->
          remove t victim;
          t.evicted <- t.evicted + 1;
          do_insert t fr;
          `Evicted victim)

let find_path t pid =
  match Hashtbl.find_opt t.by_path pid with
  | Some fr ->
    touch t pid;
    Some fr
  | None -> None

let find_head t head =
  let frs = Option.value ~default:[] (Hashtbl.find_opt t.by_head head) in
  List.iter (fun fr -> touch t fr.fr_path) frs;
  frs

let flush t =
  Hashtbl.reset t.by_path;
  Hashtbl.reset t.by_head;
  Hashtbl.reset t.stamps;
  t.flushes <- t.flushes + 1

let flush_count t = t.flushes

let inserted_total t = t.inserted

let evicted_total t = t.evicted
