type t = {
  native_cycles_per_instr : float;
  interp_cycles_per_instr : float;
  fragment_cycles_per_instr : float;
  fragment_link_cycles : float;
  counter_cycles : float;
  shift_cycles : float;
  table_update_cycles : float;
  collection_cycles_per_block : float;
  optimize_cycles_per_instr : float;
  flush_cycles : float;
}

(* Calibration notes (see EXPERIMENTS.md):
   - The recorded traces are ~1000x shorter than the paper's runs, which
     inflates the profiled/interpreted share of flow and deflates fragment
     reuse by the same factor.  [interp_cycles_per_instr] and
     [optimize_cycles_per_instr] are therefore set below their physical
     values (Dynamo's interpreter was ~10-20x native; fragment generation
     costs thousands of cycles) so that the products
     interp_share x interp_cost and fragments x optimize_cost keep the
     paper's proportions.
   - [fragment_link_cycles] is ~1: Dynamo links fragments to each other in
     the cache, so steady-state execution does not context-switch per
     fragment entry. *)
let default =
  {
    native_cycles_per_instr = 1.0;
    interp_cycles_per_instr = 3.0;
    fragment_cycles_per_instr = 0.68;
    fragment_link_cycles = 1.0;
    counter_cycles = 8.0;
    shift_cycles = 30.0;
    table_update_cycles = 250.0;
    collection_cycles_per_block = 80.0;
    optimize_cycles_per_instr = 30.0;
    flush_cycles = 10_000.0;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>native=%.2f interp=%.2f fragment=%.2f link=%.1f counter=%.1f shift=%.1f \
     table=%.1f collect/blk=%.1f optimize/instr=%.1f flush=%.1f@]"
    t.native_cycles_per_instr t.interp_cycles_per_instr t.fragment_cycles_per_instr
    t.fragment_link_cycles t.counter_cycles t.shift_cycles t.table_update_cycles
    t.collection_cycles_per_block t.optimize_cycles_per_instr t.flush_cycles

let validate t =
  let err s = Error s in
  let positive =
    [
      ("native_cycles_per_instr", t.native_cycles_per_instr);
      ("interp_cycles_per_instr", t.interp_cycles_per_instr);
      ("fragment_cycles_per_instr", t.fragment_cycles_per_instr);
      ("fragment_link_cycles", t.fragment_link_cycles);
      ("counter_cycles", t.counter_cycles);
      ("shift_cycles", t.shift_cycles);
      ("table_update_cycles", t.table_update_cycles);
      ("collection_cycles_per_block", t.collection_cycles_per_block);
      ("optimize_cycles_per_instr", t.optimize_cycles_per_instr);
      ("flush_cycles", t.flush_cycles);
    ]
  in
  match List.find_opt (fun (_, v) -> v <= 0.0) positive with
  | Some (name, _) -> err (name ^ " must be positive")
  | None ->
    if t.interp_cycles_per_instr <= t.native_cycles_per_instr then
      err "interpretation must be slower than native execution"
    else if t.fragment_cycles_per_instr >= t.interp_cycles_per_instr then
      err "fragments must be faster than interpretation"
    else Ok ()
