(** Cycle cost model for the Dynamo simulation (Section 6 of the paper).

    The real Dynamo interprets the native binary until hot paths are
    predicted, then executes optimized copies from a software code cache.
    The simulator replays a recorded trace and charges cycles per path
    instance according to where it would have executed.  Absolute numbers
    are not the point (the paper ran on 1999 PA-RISC hardware); the ratios
    are chosen so the relative behaviour matches Figure 5: NET at delay 50
    averages ≈ +15%, path-profile-based prediction loses money except on
    the most path-dominant programs.

    All costs are in native cycles; a native instruction costs
    [native_cycles_per_instr] = 1. *)

type t = {
  native_cycles_per_instr : float;  (** Baseline: 1.0. *)
  interp_cycles_per_instr : float;
      (** Emulation overhead while profiling (Dynamo interprets ~10-20x
          slower than native). *)
  fragment_cycles_per_instr : float;
      (** Optimized cache execution: < 1 thanks to trace layout,
          redundancy elimination and branch straightening. *)
  fragment_link_cycles : float;
      (** Per entry into a cached fragment (context switch in/out). *)
  counter_cycles : float;
      (** One NET head-counter increment (load, add, compare, store). *)
  shift_cycles : float;
      (** One bit-tracing signature shift-or, per executed branch. *)
  table_update_cycles : float;
      (** One path-table hash probe + counter bump, per completed path. *)
  collection_cycles_per_block : float;
      (** NET tail collection: one breakpoint place/handle/remove per
          block (Section 4.2's incremental instrumentation). *)
  optimize_cycles_per_instr : float;
      (** Fragment construction: copy, optimize, emit, link. *)
  flush_cycles : float;  (** Full cache flush (Section 6.1). *)
}

val default : t

val pp : Format.formatter -> t -> unit

val validate : t -> (unit, string) result
(** All components must be positive; interpretation must be slower than
    native and fragments faster than interpretation. *)
