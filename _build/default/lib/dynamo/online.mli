(** The live Dynamo driver: interpret, segment, predict, and account in
    one pass — no recording step.

    This is how a deployed system runs (the record-once/replay-many split
    used by the experiments is an analysis optimization).  The driver owns
    the VM, a {!Hotpath_trace} [Segmenter], and a growing path table; each
    completed path instance goes straight through the same
    {!Engine.Stepper} the offline replay uses, so for equal seeds the
    online run and [Engine.run] over a recording produce {e identical}
    results — tested, and the strongest evidence that the replay
    methodology is faithful. *)

module Cfg = Hotpath_cfg.Cfg

type outcome = {
  o_result : Engine.result;
  o_instances : int;  (** Completed path instances processed. *)
  o_paths : int;  (** Distinct paths interned along the way. *)
}

val run :
  ?max_steps:int ->
  ?max_paths:int ->
  ?max_stack:int ->
  config:Engine.config ->
  Cfg.program ->
  Hotpath_vm.Behavior.t ->
  rng:Hotpath_util.Prng.t ->
  outcome
(** Drive the program live under the configured prediction scheme.
    [max_steps] bounds executed blocks, [max_paths] completed instances. *)
