lib/cfg/cfg.ml: Array Buffer Format Hotpath_util Printf String
