lib/cfg/cfg.mli: Format
