module Cfg = Hotpath_cfg.Cfg
module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Signature = Hotpath_trace.Signature
module Vec = Hotpath_util.Vec

type outcome = { base : Replay.outcome; phantoms : Signature.t list }

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Walk an executed path and credit each of its branch outcomes and
   indirect targets, recovered from the signature. *)
let update_counts program ~taken_counts ~indirect_counts (p : Path.t) =
  let bit = ref 0 in
  let indirects = ref (Signature.indirect_targets p.Path.signature) in
  let last = Array.length p.Path.blocks - 1 in
  Array.iteri
    (fun i b ->
       match (Cfg.block program b).Cfg.term with
       | Cfg.Branch _ ->
         let taken = Signature.bit p.Path.signature !bit in
         incr bit;
         let t, nt =
           Option.value ~default:(0, 0) (Hashtbl.find_opt taken_counts b)
         in
         Hashtbl.replace taken_counts b (if taken then (t + 1, nt) else (t, nt + 1))
       | Cfg.Indirect _ -> begin
           match !indirects with
           | target :: rest ->
             indirects := rest;
             bump indirect_counts (b, target)
           | [] -> ()
         end
       | Cfg.Return when i < last -> begin
           (* A return the path extended across contributes its dynamic
              target to the signature's indirect list; consume it but do
              not treat it as dispatch statistics (a static construction
              cannot follow it anyway). *)
           match !indirects with
           | _ :: rest -> indirects := rest
           | [] -> ()
         end
       | Cfg.Jump _ | Cfg.Call _ | Cfg.Return | Cfg.Exit -> ())
    p.Path.blocks

let construct program ~taken_counts ~indirect_counts ~head =
  let sigb = Signature.Builder.create ~head in
  let blocks = Vec.create () in
  Vec.push blocks head;
  let return_stack = Vec.create () in
  let rec walk cur =
    let continue_to dst =
      if Cfg.is_backward program ~src:cur ~dst then ()  (* path ends here *)
      else if Signature.Builder.branch_count sigb >= Signature.max_branches then ()
      else begin
        Vec.push blocks dst;
        walk dst
      end
    in
    match (Cfg.block program cur).Cfg.term with
    | Cfg.Branch { taken; fallthrough } ->
      let t, nt = Option.value ~default:(0, 0) (Hashtbl.find_opt taken_counts cur) in
      (* Ties and unseen branches fall through, like a static not-taken
         predictor. *)
      let dir = t > nt in
      if Signature.Builder.branch_count sigb >= Signature.max_branches then ()
      else begin
        Signature.Builder.add_branch sigb ~taken:dir;
        let dst = if dir then taken else fallthrough in
        if Cfg.is_backward program ~src:cur ~dst then ()
        else if Signature.Builder.branch_count sigb >= Signature.max_branches then ()
        else begin
          Vec.push blocks dst;
          walk dst
        end
      end
    | Cfg.Jump dst -> continue_to dst
    | Cfg.Indirect targets ->
      let best = ref targets.(0) and best_count = ref (-1) in
      Array.iter
        (fun target ->
           let c =
             Option.value ~default:0 (Hashtbl.find_opt indirect_counts (cur, target))
           in
           if c > !best_count then begin
             best := target;
             best_count := c
           end)
        targets;
      Signature.Builder.add_indirect sigb ~target:!best;
      continue_to !best
    | Cfg.Call { callee; return_to } ->
      let entry = (Cfg.proc program callee).Cfg.entry in
      if Cfg.is_backward program ~src:cur ~dst:entry then ()  (* recursion head *)
      else begin
        Vec.push return_stack return_to;
        Vec.push blocks entry;
        walk entry
      end
    | Cfg.Return ->
      (* A return matching a call taken on the path ends it; a return with
         no on-path call would need the dynamic stack, which a static
         construction does not have — end there too. *)
      ()
    | Cfg.Exit -> ()
  in
  walk head;
  (Signature.Builder.freeze sigb, Vec.to_array blocks)

let run ~delay (r : Recorder.t) =
  if delay < 1 then invalid_arg "Branch_profile.run: delay must be >= 1";
  let program = r.Recorder.program in
  let table = r.Recorder.table in
  let n_paths = Recorder.num_paths r in
  let paths = Path_table.paths table in
  let taken_counts : (Cfg.block_id, int * int) Hashtbl.t = Hashtbl.create 256 in
  let indirect_counts : (Cfg.block_id * Cfg.block_id, int) Hashtbl.t =
    Hashtbl.create 64
  in
  let head_counters : (Cfg.block_id, int) Hashtbl.t = Hashtbl.create 256 in
  let phantom_set = Hashtbl.create 16 in
  let phantoms = Vec.create () in
  let predicted_at = Array.make n_paths max_int in
  let freq = Array.make n_paths 0 in
  let captured = Array.make n_paths 0 in
  let predictions = Vec.create () in
  let profiled = ref 0
  and captured_total = ref 0
  and ops = ref 0
  and collection = ref 0 in
  let instances = r.Recorder.instances in
  for i = 0 to Array.length instances - 1 do
    let pid = instances.(i) in
    let p = paths.(pid) in
    freq.(pid) <- freq.(pid) + 1;
    if predicted_at.(pid) < i then begin
      captured.(pid) <- captured.(pid) + 1;
      incr captured_total
    end
    else begin
      incr profiled;
      (* Boa profiles every branch of every interpreted path. *)
      update_counts program ~taken_counts ~indirect_counts p;
      ops :=
        !ops + p.Path.n_branches
        + List.length (Signature.indirect_targets p.Path.signature);
      if Recorder.arrival r i = Path.Loop_head then begin
        let head = Path.head p in
        incr ops;
        let count = 1 + Option.value ~default:0 (Hashtbl.find_opt head_counters head) in
        if count < delay then Hashtbl.replace head_counters head count
        else begin
          Hashtbl.replace head_counters head 0;
          let signature, cblocks =
            construct program ~taken_counts ~indirect_counts ~head
          in
          collection := !collection + Array.length cblocks;
          match Path_table.find table signature with
          | Some target when predicted_at.(target) = max_int ->
            predicted_at.(target) <- i;
            Vec.push predictions { Replay.target; at_instance = i }
          | Some _ -> ()
          | None ->
            if not (Hashtbl.mem phantom_set signature) then begin
              Hashtbl.add phantom_set signature ();
              Vec.push phantoms signature
            end
        end
      end
    end
  done;
  let base =
    {
      Replay.scheme_name = "boa";
      delay;
      total_instances = Array.length instances;
      predictions = Vec.to_array predictions;
      predicted_at;
      freq;
      captured;
      profiled_instances = !profiled;
      captured_instances = !captured_total;
      counter_space =
        Hashtbl.length taken_counts + Hashtbl.length indirect_counts
        + Hashtbl.length head_counters;
      profiling_ops = !ops;
      collection_ops = !collection;
    }
  in
  { base; phantoms = Vec.to_list phantoms }
