(** Path-profile-based prediction (Section 4 of the paper).

    The straightforward online adaptation of an offline path profiler:
    profile every path (here via bit tracing, which needs no preparatory
    static analysis) and predict a path as hot as soon as its execution
    count reaches the prediction delay τ.

    Cost model, per observed instance: one signature shift per conditional
    branch on the path plus one path-table counter update.  Counter space
    is one counter per distinct dynamic path — the quantity Table 2 and
    Figure 4 of the paper compare against NET. *)

include Scheme.S
