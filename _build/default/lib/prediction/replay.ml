module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Vec = Hotpath_util.Vec

type prediction = { target : int; at_instance : int }

type outcome = {
  scheme_name : string;
  delay : int;
  total_instances : int;
  predictions : prediction array;
  predicted_at : int array;
  freq : int array;
  captured : int array;
  profiled_instances : int;
  captured_instances : int;
  counter_space : int;
  profiling_ops : int;
  collection_ops : int;
}

let run (module S : Scheme.S) ~delay (r : Recorder.t) =
  let n_paths = Recorder.num_paths r in
  let table = r.Recorder.table in
  (* Cache per-path descriptors once; the replay loop is hot. *)
  let heads = Array.make n_paths 0
  and branches = Array.make n_paths 0
  and blocks = Array.make n_paths 0 in
  Path_table.iter
    (fun p ->
       heads.(p.Path.id) <- Path.head p;
       branches.(p.Path.id) <- p.Path.n_branches;
       blocks.(p.Path.id) <- Array.length p.Path.blocks)
    table;
  let state = S.create ~delay ~program:r.Recorder.program in
  let predicted_at = Array.make n_paths max_int in
  let freq = Array.make n_paths 0 in
  let captured = Array.make n_paths 0 in
  let predictions = Vec.create () in
  let profiled = ref 0 and captured_total = ref 0 in
  let instances = r.Recorder.instances in
  let n = Array.length instances in
  for i = 0 to n - 1 do
    let pid = instances.(i) in
    freq.(pid) <- freq.(pid) + 1;
    if predicted_at.(pid) < i then begin
      captured.(pid) <- captured.(pid) + 1;
      incr captured_total
    end
    else begin
      incr profiled;
      match
        S.observe state ~head:heads.(pid) ~arrival:(Recorder.arrival r i)
          ~path_id:pid ~n_branches:branches.(pid) ~n_blocks:blocks.(pid)
      with
      | Some target when predicted_at.(target) = max_int ->
        predicted_at.(target) <- i;
        Vec.push predictions { target; at_instance = i }
      | Some _ | None -> ()
    end
  done;
  {
    scheme_name = S.name;
    delay;
    total_instances = n;
    predictions = Vec.to_array predictions;
    predicted_at;
    freq;
    captured;
    profiled_instances = !profiled;
    captured_instances = !captured_total;
    counter_space = S.counter_space state;
    profiling_ops = S.profiling_ops state;
    collection_ops = S.collection_ops state;
  }

let predicted_paths o =
  Array.to_list o.predictions
  |> List.map (fun p -> p.target)
  |> List.sort Int.compare

let pp_summary ppf o =
  Format.fprintf ppf
    "@[<h>%s(delay=%d): instances=%d predicted=%d profiled=%d captured=%d \
     counters=%d ops=%d collect=%d@]"
    o.scheme_name o.delay o.total_instances
    (Array.length o.predictions)
    o.profiled_instances o.captured_instances o.counter_space o.profiling_ops
    o.collection_ops
