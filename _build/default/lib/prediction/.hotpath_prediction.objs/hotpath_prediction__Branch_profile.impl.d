lib/prediction/branch_profile.ml: Array Hashtbl Hotpath_cfg Hotpath_trace Hotpath_util List Option Replay
