lib/prediction/net.ml: Hashtbl Hotpath_cfg Hotpath_trace Option
