lib/prediction/path_profile.ml: Hashtbl Hotpath_cfg Hotpath_trace Option
