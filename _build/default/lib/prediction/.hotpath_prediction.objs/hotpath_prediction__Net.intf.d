lib/prediction/net.mli: Scheme
