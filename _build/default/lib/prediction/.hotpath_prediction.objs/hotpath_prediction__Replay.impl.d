lib/prediction/replay.ml: Array Format Hotpath_trace Hotpath_util Int List Scheme
