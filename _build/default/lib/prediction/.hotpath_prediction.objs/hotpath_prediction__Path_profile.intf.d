lib/prediction/path_profile.mli: Scheme
