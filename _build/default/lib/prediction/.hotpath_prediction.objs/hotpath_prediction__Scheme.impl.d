lib/prediction/scheme.ml: Hotpath_cfg Hotpath_trace
