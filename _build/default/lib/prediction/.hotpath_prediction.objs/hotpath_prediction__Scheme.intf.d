lib/prediction/scheme.mli: Hotpath_cfg Hotpath_trace
