lib/prediction/branch_profile.mli: Hashtbl Hotpath_cfg Hotpath_trace Replay
