lib/prediction/replay.mli: Format Hotpath_trace Scheme
