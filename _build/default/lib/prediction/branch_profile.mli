(** Boa-style branch-profile-based prediction (Section 7 of the paper).

    The Boa binary translator profiles {e every branch} during
    interpretation; when a hot head is found, the predicted path is
    {e constructed} by repeatedly following each branch's most likely
    successor.  The paper's criticism, reproduced here: building a path
    from isolated branch frequencies ignores branch correlation, so the
    constructed path may be one that never executes as a whole.  Such
    constructions are reported as {e phantoms} — in a real system they
    become fragments that are optimized, cached, and never reused.

    This scheme does not fit the {!Scheme.S} interface (a prediction may
    target a path the trace never exhibits), so it ships with its own
    replay that returns a {!Hotpath_prediction.Replay.outcome}-compatible
    record plus phantom accounting. *)

module Cfg = Hotpath_cfg.Cfg
module Recorder = Hotpath_trace.Recorder
module Signature = Hotpath_trace.Signature

type outcome = {
  base : Replay.outcome;
      (** Standard replay accounting; [scheme_name] is ["boa"].
          [profiling_ops] counts one update per executed branch (every
          branch is profiled) plus a head-counter bump per loop-head
          arrival; [counter_space] counts branch counters plus head
          counters. *)
  phantoms : Signature.t list;
      (** Constructed paths that never occur in the trace, in construction
          order.  Each is pure cost: a fragment built and never entered. *)
}

val run : delay:int -> Recorder.t -> outcome
(** Replay the recorded trace under Boa prediction with delay τ: per
    observed instance, bump the per-branch (and per-indirect-target)
    frequency counts along the executed path; when a loop head's counter
    trips, walk the CFG from the head following argmax directions — across
    forward calls and returns, ending at a backward transfer, a matched
    return, the signature cap, or program exit, as in the recorder — and
    predict the constructed path.
    @raise Invalid_argument when [delay < 1]. *)

val construct :
  Cfg.program ->
  taken_counts:(Cfg.block_id, int * int) Hashtbl.t ->
  indirect_counts:(Cfg.block_id * Cfg.block_id, int) Hashtbl.t ->
  head:Cfg.block_id ->
  Signature.t * Cfg.block_id array
(** The path-construction step alone (exposed for tests): from [head],
    follow per-branch argmax ([taken_counts] maps a branch block to its
    (taken, not-taken) counts; ties and unseen branches fall through), the
    hottest recorded indirect target (unseen: the first), and calls/returns
    with the paper's path-termination rules. *)
