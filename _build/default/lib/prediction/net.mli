(** NET — Next Executing Tail prediction (Section 4.1 of the paper).

    Profiling is limited to potential path starting points: a counter is
    kept per target of a backward taken transfer (loop head) and bumped on
    every arrival there via such a transfer.  When a head's counter reaches
    the prediction delay τ, the head is hot and the tail executing {e right
    now} — the next executing tail — is speculatively predicted as the hot
    path, collected by incremental instrumentation (one breakpoint per
    block, charged as collection ops).

    After a prediction the head's counter re-arms, modelling Dynamo's
    secondary trace heads at fragment exits: a loop with several hot paths
    can have each of them predicted in turn (instances of already-predicted
    paths execute in the cache and are not observed).  The {!Net_once}
    variant predicts at most once per head — the ablation showing why
    re-arming matters — and {!Last_executed_tail} predicts the {e previous}
    tail seen at the head (the stale-choice ablation). *)

include Scheme.S

module Net_once : Scheme.S

module Last_executed_tail : Scheme.S
