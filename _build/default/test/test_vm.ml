(* Tests for the interpreter and branch behaviour models. *)

module Cfg = Hotpath_cfg.Cfg
module Vm = Hotpath_vm.Vm
module Behavior = Hotpath_vm.Behavior
module Prng = Hotpath_util.Prng

let rng () = Prng.create ~seed:1234

let collect_transfers ?(max_steps = 10_000) program behavior =
  let vm = Vm.create program behavior ~rng:(rng ()) in
  let acc = ref [] in
  let stats = Vm.run ~max_steps vm ~on_transfer:(fun tr -> acc := tr :: !acc) in
  (List.rev !acc, stats)

let block_sequence transfers =
  List.map (fun tr -> tr.Vm.src) transfers

let test_simple_loop_trace () =
  let program, behavior, (b0, b1, b2, b3) = Fixtures.simple_loop ~iterations:3 () in
  let transfers, stats = collect_transfers program behavior in
  Alcotest.(check bool) "exits" true (stats.Vm.reason = `Exited);
  (* 3 iterations: b0 b1 b2 b1 b2 b1 b2 b3 *)
  Alcotest.(check (list int)) "block sequence"
    [ b0; b1; b2; b1; b2; b1; b2; b3 ]
    (block_sequence transfers);
  Alcotest.(check int) "branches" 3 stats.Vm.branches;
  Alcotest.(check int) "backward transfers" 2 stats.Vm.backward_transfers

let test_branch_outcomes_recorded () =
  let program, behavior, (_, b1, b2, _) = Fixtures.simple_loop ~iterations:2 () in
  let transfers, _ = collect_transfers program behavior in
  let branch_outcomes =
    List.filter_map
      (fun tr ->
         match tr.Vm.kind with
         | Vm.T_branch { taken } -> Some (tr.Vm.src, taken, tr.Vm.dst, tr.Vm.backward)
         | _ -> None)
      transfers
  in
  Alcotest.(check int) "two branch events" 2 (List.length branch_outcomes);
  (match branch_outcomes with
   | [ (s1, t1, d1, back1); (s2, t2, _, back2) ] ->
     Alcotest.(check int) "src" b2 s1;
     Alcotest.(check bool) "first taken" true t1;
     Alcotest.(check (option int)) "to head" (Some b1) d1;
     Alcotest.(check bool) "taken is backward" true back1;
     Alcotest.(check int) "src" b2 s2;
     Alcotest.(check bool) "second not taken" false t2;
     Alcotest.(check bool) "fallthrough is forward" false back2
   | _ -> Alcotest.fail "unexpected branch events")

let test_call_return () =
  let program, behavior, (b0, b1, b2, b3, b4, b5, b6) = Fixtures.call_loop ~iterations:2 () in
  let transfers, stats = collect_transfers program behavior in
  Alcotest.(check int) "calls" 2 stats.Vm.calls;
  Alcotest.(check int) "returns" 2 stats.Vm.returns;
  Alcotest.(check (list int)) "block sequence"
    [ b0; b1; b2; b3; b4; b5; b1; b2; b3; b4; b5; b6 ]
    (block_sequence transfers);
  (* Helper is laid out between call site and return-to: both the call
     (b2 -> b3) and the return (b4 -> b5) are forward. *)
  let call_forward =
    List.exists
      (fun tr -> tr.Vm.kind = Vm.T_call && tr.Vm.src = b2 && not tr.Vm.backward)
      transfers
  and return_forward =
    List.exists
      (fun tr -> tr.Vm.kind = Vm.T_return && tr.Vm.src = b4 && not tr.Vm.backward)
      transfers
  in
  Alcotest.(check bool) "call b2->b3 is forward" true call_forward;
  Alcotest.(check bool) "return b4->b5 is forward" true return_forward

let test_recursive_call_backward () =
  let program, behavior, (_, _, b2, b3, _, _) = Fixtures.recursive ~depth:3 () in
  let transfers, stats = collect_transfers ~max_steps:100 program behavior in
  Alcotest.(check bool) "exits" true (stats.Vm.reason = `Exited);
  let recursive_call_backward =
    List.exists
      (fun tr ->
         tr.Vm.kind = Vm.T_call && tr.Vm.src = b3 && tr.Vm.dst = Some b2
         && tr.Vm.backward)
      transfers
  in
  Alcotest.(check bool) "recursive call is backward" true recursive_call_backward

let test_indirect_targets () =
  let program, behavior, (_, _, b2, b3, b4, _, _) =
    Fixtures.indirect_loop ~weights:[| 1.0; 0.0 |] ~exit_prob:0.5 ()
  in
  let transfers, _ = collect_transfers ~max_steps:1000 program behavior in
  List.iter
    (fun tr ->
       if tr.Vm.kind = Vm.T_indirect && tr.Vm.src = b2 then begin
         Alcotest.(check (option int)) "always first target" (Some b3) tr.Vm.dst;
         Alcotest.(check bool) "never second" true (tr.Vm.dst <> Some b4)
       end)
    transfers

let test_fuel () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:1_000_000 () in
  let _, stats = collect_transfers ~max_steps:50 program behavior in
  Alcotest.(check bool) "fuel" true (stats.Vm.reason = `Fuel);
  Alcotest.(check int) "blocks bounded" 50 stats.Vm.blocks

let test_determinism () =
  let program, behavior, _ = Fixtures.indirect_loop () in
  let t1, _ = collect_transfers ~max_steps:500 program behavior in
  let t2, _ = collect_transfers ~max_steps:500 program behavior in
  Alcotest.(check (list int)) "same block sequence" (block_sequence t1)
    (block_sequence t2)

let test_stack_overflow () =
  (* Recursion that never bottoms out must hit the stack guard. *)
  let program, behavior, (_, _, b2, _, _, _) = Fixtures.recursive () in
  Behavior.set_branch behavior b2 (Behavior.Always true);
  let vm = Vm.create ~max_stack:64 program behavior ~rng:(rng ()) in
  let overflowed = ref false in
  (try ignore (Vm.run ~max_steps:10_000 vm ~on_transfer:ignore)
   with Failure msg ->
     overflowed := true;
     Alcotest.(check bool) "mentions overflow" true
       (String.length msg > 0
        && String.sub msg 0 7 = "Vm.step"));
  Alcotest.(check bool) "overflowed" true !overflowed

let test_invalid_behavior_rejected () =
  let program, behavior, (_, _, b2, _) = Fixtures.simple_loop () in
  Behavior.set_branch behavior b2 (Behavior.Bias 1.5);
  (match Vm.create program behavior ~rng:(rng ()) with
   | exception Invalid_argument _ -> ()
   | (_ : Vm.t) -> Alcotest.fail "expected rejection of invalid behavior")

let test_behavior_validate () =
  let _program, behavior, (_, _, b2, _) = Fixtures.simple_loop () in
  Alcotest.(check bool) "valid" true (Behavior.validate behavior = Ok ());
  Behavior.set_branch behavior b2
    (Behavior.Correlated { bits = 2; taken_prob = [| 0.1; 0.2 |] });
  Alcotest.(check bool) "bad correlated table" true (Behavior.validate behavior <> Ok ());
  Behavior.set_branch behavior b2 (Behavior.Periodic [||]);
  Alcotest.(check bool) "empty periodic" true (Behavior.validate behavior <> Ok ());
  Behavior.set_branch behavior b2
    (Behavior.Phased [| (100, Behavior.Bias 0.5); (50, Behavior.Bias 0.9) |]);
  Alcotest.(check bool) "non-ascending phases" true (Behavior.validate behavior <> Ok ())

let test_behavior_set_wrong_kind () =
  let _program, behavior, (b0, _, b2, _) = Fixtures.simple_loop () in
  Alcotest.check_raises "set_branch on jump"
    (Invalid_argument (Printf.sprintf "Behavior.set_branch: block %d is not a branch" b0))
    (fun () -> Behavior.set_branch behavior b0 (Behavior.Always true));
  Alcotest.check_raises "set_indirect on branch"
    (Invalid_argument
       (Printf.sprintf "Behavior.set_indirect: block %d is not indirect" b2))
    (fun () -> Behavior.set_indirect behavior b2 Behavior.Uniform_target)

let test_phased_behavior_switches () =
  (* Loop branch: almost-always taken before step 100, never taken after. *)
  let program, behavior, (_, _, b2, _) = Fixtures.simple_loop () in
  Behavior.set_branch behavior b2
    (Behavior.Phased [| (100, Behavior.Always true); (max_int, Behavior.Always false) |]);
  let vm = Vm.create program behavior ~rng:(rng ()) in
  let stats = Vm.run ~max_steps:100_000 vm ~on_transfer:ignore in
  Alcotest.(check bool) "terminates shortly after the phase flip" true
    (stats.Vm.reason = `Exited && stats.Vm.blocks < 110)

let test_correlated_model_uses_history () =
  (* Branch taken iff the previous outcome of the same (only) branch was
     not-taken: alternates deterministically. *)
  let program, behavior, (_, _, b2, _) = Fixtures.simple_loop () in
  Behavior.set_branch behavior b2
    (Behavior.Correlated { bits = 1; taken_prob = [| 1.0; 0.0 |] });
  let vm = Vm.create program behavior ~rng:(rng ()) in
  let outcomes = ref [] in
  let _ =
    Vm.run ~max_steps:40 vm ~on_transfer:(fun tr ->
        match tr.Vm.kind with
        | Vm.T_branch { taken } -> outcomes := taken :: !outcomes
        | _ -> ())
  in
  (* History starts at 0 -> taken, then not taken, then program exits. *)
  Alcotest.(check (list bool)) "alternating" [ true; false ] (List.rev !outcomes)

let suites =
  [
    ( "vm",
      [
        Alcotest.test_case "simple loop trace" `Quick test_simple_loop_trace;
        Alcotest.test_case "branch outcomes" `Quick test_branch_outcomes_recorded;
        Alcotest.test_case "call/return" `Quick test_call_return;
        Alcotest.test_case "recursive call backward" `Quick test_recursive_call_backward;
        Alcotest.test_case "indirect weights" `Quick test_indirect_targets;
        Alcotest.test_case "fuel" `Quick test_fuel;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
        Alcotest.test_case "invalid behavior rejected" `Quick
          test_invalid_behavior_rejected;
        Alcotest.test_case "behavior validation" `Quick test_behavior_validate;
        Alcotest.test_case "behavior wrong kind" `Quick test_behavior_set_wrong_kind;
        Alcotest.test_case "phased behavior" `Quick test_phased_behavior_switches;
        Alcotest.test_case "correlated behavior" `Quick
          test_correlated_model_uses_history;
      ] );
  ]
