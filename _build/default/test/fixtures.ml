(* Shared miniature programs for the test suites. *)

module Cfg = Hotpath_cfg.Cfg
module Behavior = Hotpath_vm.Behavior

(* A single natural loop:

     B0 entry --jump--> B1 head
     B1 head  --jump--> B2 body
     B2 body  --branch: taken -> B1 (backward), fall -> B3
     B3 exit

   [iterations] controls how many times the back edge is taken per visit via
   a Periodic model: taken (iterations-1) times, then not taken. *)
let simple_loop ?(iterations = 3) () =
  let b = Cfg.Builder.create ~name:"simple_loop" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:2 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:3 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:5 in
  let b3 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Jump b1);
  Cfg.Builder.set_term b b1 (Cfg.Jump b2);
  Cfg.Builder.set_term b b2 (Cfg.Branch { taken = b1; fallthrough = b3 });
  Cfg.Builder.set_term b b3 Cfg.Exit;
  let program = Cfg.Builder.finish b in
  let behavior = Behavior.create program () in
  let pattern = Array.init iterations (fun i -> i < iterations - 1) in
  Behavior.set_branch behavior b2 (Behavior.Periodic pattern);
  (program, behavior, (b0, b1, b2, b3))

(* A loop whose body calls a straight-line helper.  The helper is laid out
   *between* the call site and the return-to block, so both the call
   (B2 -> B3) and the matched return (B4 -> B5) are forward transfers —
   the path through the call ends at the matched return (the paper's
   Matched_return end kind):

     main:   B0 entry -> B1 head -> B2 (call helper, returns to B5)
     helper: B3 -> B4 (return)
     main:   B5 --branch: taken -> B1 (backward), fall -> B6 exit *)
let call_loop ?(iterations = 4) () =
  let b = Cfg.Builder.create ~name:"call_loop" in
  let main = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:main ~weight:2 in
  let b2 = Cfg.Builder.add_block b ~proc:main ~weight:2 in
  let helper = Cfg.Builder.add_proc b ~name:"helper" in
  let b3 = Cfg.Builder.add_block b ~proc:helper ~weight:4 in
  let b4 = Cfg.Builder.add_block b ~proc:helper ~weight:1 in
  let b5 = Cfg.Builder.add_block b ~proc:main ~weight:2 in
  let b6 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Jump b1);
  Cfg.Builder.set_term b b1 (Cfg.Jump b2);
  Cfg.Builder.set_term b b2 (Cfg.Call { callee = helper; return_to = b5 });
  Cfg.Builder.set_term b b3 (Cfg.Jump b4);
  Cfg.Builder.set_term b b4 Cfg.Return;
  Cfg.Builder.set_term b b5 (Cfg.Branch { taken = b1; fallthrough = b6 });
  Cfg.Builder.set_term b b6 Cfg.Exit;
  let program = Cfg.Builder.finish b in
  let behavior = Behavior.create program () in
  let pattern = Array.init iterations (fun i -> i < iterations - 1) in
  Behavior.set_branch behavior b5 (Behavior.Periodic pattern);
  (program, behavior, (b0, b1, b2, b3, b4, b5, b6))

(* Self-recursion: main calls [rec_proc]; rec_proc at B2 branches — taken:
   recurse (the call at B3 targets rec_proc whose entry B2 <= B3, hence a
   backward call), fallthrough: return.  The paper's path definition
   captures such recursive loops without unfolding. *)
let recursive ?(depth = 3) () =
  let b = Cfg.Builder.create ~name:"recursive" in
  let main = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  let rp = Cfg.Builder.add_proc b ~name:"rec" in
  let b2 = Cfg.Builder.add_block b ~proc:rp ~weight:2 in
  let b3 = Cfg.Builder.add_block b ~proc:rp ~weight:1 in
  let b4 = Cfg.Builder.add_block b ~proc:rp ~weight:1 in
  let b5 = Cfg.Builder.add_block b ~proc:rp ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Call { callee = rp; return_to = b1 });
  Cfg.Builder.set_term b b1 Cfg.Exit;
  Cfg.Builder.set_term b b2 (Cfg.Branch { taken = b3; fallthrough = b5 });
  Cfg.Builder.set_term b b3 (Cfg.Call { callee = rp; return_to = b4 });
  Cfg.Builder.set_term b b4 Cfg.Return;
  Cfg.Builder.set_term b b5 Cfg.Return;
  let program = Cfg.Builder.finish b in
  let behavior = Behavior.create program () in
  (* Recurse (depth-1) times then bottom out, repeatedly. *)
  let pattern = Array.init depth (fun i -> i < depth - 1) in
  Behavior.set_branch behavior b2 (Behavior.Periodic pattern);
  (program, behavior, (b0, b1, b2, b3, b4, b5))

(* A loop with an indirect dispatch in its body (switch-like):

     B0 -> B1 head -> B2 indirect -> {B3, B4} -> B5 branch back/exit *)
let indirect_loop ?(weights = [| 0.5; 0.5 |]) ?(exit_prob = 0.25) () =
  let b = Cfg.Builder.create ~name:"indirect_loop" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:2 in
  let b3 = Cfg.Builder.add_block b ~proc:p ~weight:3 in
  let b4 = Cfg.Builder.add_block b ~proc:p ~weight:3 in
  let b5 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b6 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Jump b1);
  Cfg.Builder.set_term b b1 (Cfg.Jump b2);
  Cfg.Builder.set_term b b2 (Cfg.Indirect [| b3; b4 |]);
  Cfg.Builder.set_term b b3 (Cfg.Jump b5);
  Cfg.Builder.set_term b b4 (Cfg.Jump b5);
  Cfg.Builder.set_term b b5 (Cfg.Branch { taken = b1; fallthrough = b6 });
  Cfg.Builder.set_term b b6 Cfg.Exit;
  let program = Cfg.Builder.finish b in
  let behavior = Behavior.create program () in
  Behavior.set_indirect behavior b2 (Behavior.Weighted_target weights);
  Behavior.set_branch behavior b5 (Behavior.Bias (1.0 -. exit_prob));
  (program, behavior, (b0, b1, b2, b3, b4, b5, b6))
