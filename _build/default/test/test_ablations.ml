(* Tests for the ablation studies. *)

module A = Hotpath_experiments.Ablations
module Stats = Hotpath_util.Stats

let scale = 0.1

let variants = lazy (A.net_variants ~scale ())

let test_variant_rows () =
  Alcotest.(check int) "9 benchmarks x 3 variants" 27
    (List.length (Lazy.force variants))

let test_variant_rates_bounded () =
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Printf.sprintf "%s/%s hit %.1f in range" r.A.v_bench r.A.v_scheme r.A.v_hit)
         true
         (r.A.v_hit >= 0.0 && r.A.v_hit <= 100.0 && r.A.v_noise >= 0.0))
    (Lazy.force variants)

let avg_hit scheme =
  let rows = List.filter (fun r -> r.A.v_scheme = scheme) (Lazy.force variants) in
  Stats.mean (Array.of_list (List.map (fun r -> r.A.v_hit) rows))

let test_rearming_beats_once () =
  (* Re-arming NET models Dynamo's secondary trace heads; predicting only
     once per head leaves later hot tails of the same loop uncaptured. *)
  let net = avg_hit "net" and once = avg_hit "net-once" in
  Alcotest.(check bool)
    (Printf.sprintf "net %.1f%% > net-once %.1f%%" net once)
    true (net > once +. 5.0)

let test_net_at_least_as_good_as_let () =
  (* The next executing tail is fresher than the last executed one. *)
  let net = avg_hit "net" and let_ = avg_hit "let" in
  Alcotest.(check bool)
    (Printf.sprintf "net %.1f%% >= let %.1f%% - 2" net let_)
    true
    (net >= let_ -. 2.0)

let test_once_predicts_fewer () =
  List.iter
    (fun bench ->
       let get scheme =
         List.find
           (fun r -> r.A.v_bench = bench && r.A.v_scheme = scheme)
           (Lazy.force variants)
       in
       Alcotest.(check bool)
         (bench ^ ": once predicts no more than re-arming")
         true
         ((get "net-once").A.v_predictions <= (get "net").A.v_predictions))
    Hotpath_workloads.Suite.names

let boa_rows = lazy (A.boa ~scale ())

let test_boa_rows () =
  Alcotest.(check int) "9 benchmarks + correlated" 10 (List.length (Lazy.force boa_rows))

let test_boa_more_expensive () =
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: Boa ops (%d) > NET ops (%d)" r.A.b_bench r.A.b_boa_ops
            r.A.b_net_ops)
         true
         (r.A.b_boa_ops > r.A.b_net_ops))
    (Lazy.force boa_rows)

let test_boa_never_clearly_better () =
  let net =
    Stats.mean
      (Array.of_list (List.map (fun r -> r.A.b_net_hit) (Lazy.force boa_rows)))
  and boa =
    Stats.mean
      (Array.of_list (List.map (fun r -> r.A.b_boa_hit) (Lazy.force boa_rows)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "NET avg %.1f%% > Boa avg %.1f%%" net boa)
    true (net > boa)

let test_boa_phantom_on_correlated () =
  let row = List.find (fun r -> r.A.b_bench = "correlated") (Lazy.force boa_rows) in
  Alcotest.(check bool) "phantoms constructed" true (row.A.b_boa_phantoms >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "NET %.1f%% beats Boa %.1f%% on correlated" row.A.b_net_hit
       row.A.b_boa_hit)
    true
    (row.A.b_net_hit > row.A.b_boa_hit)

let threshold_rows = lazy (A.thresholds ~scale ())

let test_threshold_rows () =
  Alcotest.(check int) "9 benchmarks x 3 thresholds" 27
    (List.length (Lazy.force threshold_rows))

let test_net_matches_pp_across_thresholds () =
  (* The headline NET ~ path-profile equivalence is not an artifact of the
     paper's 0.1% choice. *)
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Printf.sprintf "%s@%.2f%%: NET %.1f ~ PP %.1f" r.A.t_bench
            (100.0 *. r.A.t_threshold) r.A.t_net_hit r.A.t_pp_hit)
         true
         (abs_float (r.A.t_net_hit -. r.A.t_pp_hit) < 15.0))
    (Lazy.force threshold_rows)

let test_cost_sensitivity_ordering () =
  (* Figure 5's qualitative result must not depend on the calibration
     constants: NET stays above path-profile at every cost point. *)
  let rows =
    A.cost_sensitivity ~scale:1.0 ~interp_values:[ 2.0; 4.0 ]
      ~fragment_values:[ 0.6; 0.8 ] ()
  in
  Alcotest.(check int) "grid size" 4 (List.length rows);
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Printf.sprintf "interp=%.1f frag=%.2f: NET %.1f > PP %.1f" r.A.c_interp
            r.A.c_fragment r.A.c_net50 r.A.c_pp50)
         true
         (r.A.c_net50 > r.A.c_pp50))
    rows

let test_seed_robustness () =
  let rows = A.seed_robustness ~scale:0.05 ~seeds:[ 7; 8; 9 ] () in
  Alcotest.(check int) "nine benchmarks" 9 (List.length rows);
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: tight spread (net std %.1f)" r.A.sr_bench r.A.sr_net_std)
         true
         (r.A.sr_net_std < 6.0 && r.A.sr_pp_std < 6.0);
       Alcotest.(check bool)
         (Printf.sprintf "%s: NET %.1f ~>= PP %.1f" r.A.sr_bench r.A.sr_net_mean
            r.A.sr_pp_mean)
         true
         (r.A.sr_net_mean >= r.A.sr_pp_mean -. 3.0))
    rows

let test_renderers_smoke () =
  Alcotest.(check bool) "variants renders" true
    (String.length (A.render_net_variants ~scale ()) > 100);
  Alcotest.(check bool) "boa renders" true
    (String.length (A.render_boa ~scale ()) > 100);
  Alcotest.(check bool) "thresholds renders" true
    (String.length (A.render_thresholds ~scale ()) > 100)

let suites =
  [
    ( "ablations.net_variants",
      [
        Alcotest.test_case "row count" `Quick test_variant_rows;
        Alcotest.test_case "rates bounded" `Quick test_variant_rates_bounded;
        Alcotest.test_case "re-arming beats once" `Quick test_rearming_beats_once;
        Alcotest.test_case "net >= let" `Quick test_net_at_least_as_good_as_let;
        Alcotest.test_case "once predicts fewer" `Quick test_once_predicts_fewer;
      ] );
    ( "ablations.boa",
      [
        Alcotest.test_case "row count" `Quick test_boa_rows;
        Alcotest.test_case "boa more expensive" `Quick test_boa_more_expensive;
        Alcotest.test_case "net better on average" `Quick test_boa_never_clearly_better;
        Alcotest.test_case "phantom on correlated" `Quick test_boa_phantom_on_correlated;
      ] );
    ( "ablations.thresholds",
      [
        Alcotest.test_case "row count" `Quick test_threshold_rows;
        Alcotest.test_case "net ~ pp across thresholds" `Quick
          test_net_matches_pp_across_thresholds;
        Alcotest.test_case "cost-sensitivity ordering" `Slow
          test_cost_sensitivity_ordering;
        Alcotest.test_case "seed robustness" `Slow test_seed_robustness;
        Alcotest.test_case "renderers" `Quick test_renderers_smoke;
      ] );
  ]
