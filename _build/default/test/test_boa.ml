(* Tests for Boa-style branch-profile prediction and the correlated
   workload that defeats it (Section 7 of the paper). *)

module Cfg = Hotpath_cfg.Cfg
module Recorder = Hotpath_trace.Recorder
module Signature = Hotpath_trace.Signature
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Branch_profile = Hotpath_prediction.Branch_profile
module Net = Hotpath_prediction.Net
module Replay = Hotpath_prediction.Replay
module Hot_set = Hotpath_metrics.Hot_set
module Rates = Hotpath_metrics.Rates
module Correlated = Hotpath_workloads.Correlated
module Prng = Hotpath_util.Prng

(* ------------------------------------------------------------------ *)
(* construct                                                           *)
(* ------------------------------------------------------------------ *)

let test_construct_follows_argmax () =
  let program, _, (_, b1, b2, b3) = Fixtures.simple_loop () in
  ignore b3;
  let taken_counts = Hashtbl.create 4 in
  let indirect_counts = Hashtbl.create 4 in
  (* Loop branch at b2 heavily taken: construction from the head follows
     the back edge. *)
  Hashtbl.replace taken_counts b2 (90, 10);
  let signature, blocks =
    Branch_profile.construct program ~taken_counts ~indirect_counts ~head:b1
  in
  Alcotest.(check (array int)) "loop body" [| b1; b2 |] blocks;
  Alcotest.(check string) "signature" (Printf.sprintf "B%d.1" b1)
    (Signature.to_string signature)

let test_construct_unseen_falls_through () =
  let program, _, (_, b1, b2, b3) = Fixtures.simple_loop () in
  let taken_counts = Hashtbl.create 4 in
  let indirect_counts = Hashtbl.create 4 in
  (* No counts at all: static not-taken prediction exits the loop. *)
  let _, blocks =
    Branch_profile.construct program ~taken_counts ~indirect_counts ~head:b1
  in
  Alcotest.(check (array int)) "falls out of the loop" [| b1; b2; b3 |] blocks

let test_construct_ends_at_matched_return () =
  let program, _, (_, b1, b2, b3, b4, _, _) = Fixtures.call_loop () in
  let taken_counts = Hashtbl.create 4 in
  let indirect_counts = Hashtbl.create 4 in
  let _, blocks =
    Branch_profile.construct program ~taken_counts ~indirect_counts ~head:b1
  in
  (* Crosses the forward call and ends at the matched return, like the
     recorder's paths. *)
  Alcotest.(check (array int)) "ends at matched return" [| b1; b2; b3; b4 |] blocks

let test_construct_follows_hottest_indirect () =
  let program, _, (_, b1, b2, b3, b4, b5, _) = Fixtures.indirect_loop () in
  ignore b3;
  let taken_counts = Hashtbl.create 4 in
  let indirect_counts = Hashtbl.create 4 in
  Hashtbl.replace indirect_counts (b2, b4) 10;
  Hashtbl.replace taken_counts b5 (9, 1);
  let signature, blocks =
    Branch_profile.construct program ~taken_counts ~indirect_counts ~head:b1
  in
  Alcotest.(check (array int)) "takes hottest target" [| b1; b2; b4; b5 |] blocks;
  Alcotest.(check (list int)) "indirect recorded" [ b4 ]
    (Signature.indirect_targets signature)

(* ------------------------------------------------------------------ *)
(* run on plain workloads                                              *)
(* ------------------------------------------------------------------ *)

let record_simple ?(iterations = 500) () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations () in
  Recorder.record program behavior ~rng:(Prng.create ~seed:6)

let test_boa_predicts_dominant_loop () =
  let r = record_simple () in
  let o = Branch_profile.run ~delay:10 r in
  Alcotest.(check string) "scheme name" "boa" o.Branch_profile.base.Replay.scheme_name;
  Alcotest.(check bool) "predicts the loop path" true
    (Array.length o.Branch_profile.base.Replay.predictions >= 1);
  Alcotest.(check (list int)) "no phantoms on a single-path loop" []
    (List.map (fun _ -> 0) o.Branch_profile.phantoms);
  let hot = Hot_set.of_outcome o.Branch_profile.base ~threshold:0.01 in
  let rates = Rates.operational o.Branch_profile.base hot in
  Alcotest.(check bool) "high hit rate" true (rates.Rates.hit_rate > 90.0)

let test_boa_profiles_every_branch () =
  let r = record_simple ~iterations:100 () in
  let o = Branch_profile.run ~delay:1_000_000 r in
  (* Never predicts; ops = one per executed branch (every instance here has
     exactly one branch) plus one head-counter bump per loop-head arrival. *)
  let loop_head_arrivals = ref 0 in
  for i = 0 to Recorder.num_instances r - 1 do
    if Recorder.arrival r i = Hotpath_trace.Path.Loop_head then incr loop_head_arrivals
  done;
  Alcotest.(check int) "branch + head ops"
    (r.Recorder.vm_stats.Hotpath_vm.Vm.branches + !loop_head_arrivals)
    o.Branch_profile.base.Replay.profiling_ops;
  Alcotest.(check int) "no predictions" 0
    (Array.length o.Branch_profile.base.Replay.predictions)

let test_boa_invalid_delay () =
  let r = record_simple ~iterations:10 () in
  Alcotest.check_raises "delay 0"
    (Invalid_argument "Branch_profile.run: delay must be >= 1") (fun () ->
      ignore (Branch_profile.run ~delay:0 r))

let test_boa_determinism () =
  let r = record_simple () in
  let o1 = Branch_profile.run ~delay:10 r in
  let o2 = Branch_profile.run ~delay:10 r in
  Alcotest.(check (array int)) "same predicted_at"
    o1.Branch_profile.base.Replay.predicted_at
    o2.Branch_profile.base.Replay.predicted_at

(* ------------------------------------------------------------------ *)
(* Correlated workload                                                 *)
(* ------------------------------------------------------------------ *)

let record_correlated ?(triples = 1) ?(seed = 11) () =
  let program, behavior = Correlated.build ~triples ~iterations:3_000 () in
  let recorded =
    Recorder.record ~max_paths:20_000 ~max_steps:2_000_000 program behavior
      ~rng:(Prng.create ~seed)
  in
  (program, recorded)

let test_correlated_impossible_combo_never_executes () =
  let program, recorded = record_correlated () in
  let phantom = Correlated.phantom_signature program in
  Alcotest.(check (option int)) "the (fall,fall,taken) path never occurs" None
    (Path_table.find recorded.Recorder.table phantom)

let test_correlated_third_branch_marginal () =
  (* The third branch is taken iff one of the first two was: marginally
     about 1 - 0.55^2 = 69.75%. *)
  let program, recorded = record_correlated () in
  ignore program;
  let taken = ref 0 and total = ref 0 in
  let paths = Path_table.paths recorded.Recorder.table in
  let freq = Recorder.frequencies recorded in
  Array.iter
    (fun (p : Path.t) ->
       if p.Path.n_branches = 4 then begin
         (* head-started loop path: bits b1 b2 b3 latch *)
         total := !total + freq.(p.Path.id);
         if Signature.bit p.Path.signature 2 then taken := !taken + freq.(p.Path.id)
       end)
    paths;
  let rate = float_of_int !taken /. float_of_int (max 1 !total) in
  Alcotest.(check bool)
    (Printf.sprintf "third-branch marginal %.2f near 0.70" rate)
    true
    (abs_float (rate -. 0.6975) < 0.03)

let test_boa_builds_phantom_on_correlated () =
  let program, recorded = record_correlated () in
  let o = Branch_profile.run ~delay:50 recorded in
  Alcotest.(check bool) "at least one phantom" true
    (List.length o.Branch_profile.phantoms >= 1);
  let phantom = Correlated.phantom_signature program in
  Alcotest.(check bool) "the impossible combination is among them" true
    (List.exists (Signature.equal phantom) o.Branch_profile.phantoms)

let test_net_beats_boa_on_correlated () =
  (* At small delays Boa's early, still-noisy counts occasionally construct
     real paths before the marginals converge; by delay 400 the counts have
     converged and every construction is the phantom. *)
  let _, recorded = record_correlated () in
  let hot =
    Hot_set.compute
      ~freq:(Recorder.frequencies recorded)
      ~total_flow:(Recorder.num_instances recorded)
      ~threshold:0.001
  in
  let net = Rates.operational (Replay.run (module Net) ~delay:400 recorded) hot in
  let boa =
    Rates.operational (Branch_profile.run ~delay:400 recorded).Branch_profile.base hot
  in
  Alcotest.(check bool)
    (Printf.sprintf "NET %.1f%% >> Boa %.1f%%" net.Rates.hit_rate boa.Rates.hit_rate)
    true
    (net.Rates.hit_rate > boa.Rates.hit_rate +. 20.0);
  Alcotest.(check bool)
    (Printf.sprintf "Boa stuck on the phantom (%.1f%%)" boa.Rates.hit_rate)
    true
    (boa.Rates.hit_rate < 30.0)

let test_correlated_build_validation () =
  (match Correlated.build ~triples:0 () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "triples 0 accepted");
  match Correlated.build ~first_bias:0.6 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bias 0.6 accepted"

let test_correlated_program_valid () =
  let program, behavior = Correlated.build ~triples:3 () in
  Alcotest.(check bool) "cfg valid" true (Cfg.validate program = Ok ());
  Alcotest.(check bool) "behavior valid" true
    (Hotpath_vm.Behavior.validate behavior = Ok ())

let suites =
  [
    ( "boa.construct",
      [
        Alcotest.test_case "follows argmax" `Quick test_construct_follows_argmax;
        Alcotest.test_case "unseen falls through" `Quick
          test_construct_unseen_falls_through;
        Alcotest.test_case "ends at matched return" `Quick
          test_construct_ends_at_matched_return;
        Alcotest.test_case "hottest indirect" `Quick
          test_construct_follows_hottest_indirect;
      ] );
    ( "boa.run",
      [
        Alcotest.test_case "predicts dominant loop" `Quick
          test_boa_predicts_dominant_loop;
        Alcotest.test_case "profiles every branch" `Quick test_boa_profiles_every_branch;
        Alcotest.test_case "invalid delay" `Quick test_boa_invalid_delay;
        Alcotest.test_case "determinism" `Quick test_boa_determinism;
      ] );
    ( "boa.correlated",
      [
        Alcotest.test_case "impossible combo absent from trace" `Quick
          test_correlated_impossible_combo_never_executes;
        Alcotest.test_case "third-branch marginal" `Quick
          test_correlated_third_branch_marginal;
        Alcotest.test_case "Boa builds the phantom" `Quick
          test_boa_builds_phantom_on_correlated;
        Alcotest.test_case "NET beats Boa" `Quick test_net_beats_boa_on_correlated;
        Alcotest.test_case "build validation" `Quick test_correlated_build_validation;
        Alcotest.test_case "program valid" `Quick test_correlated_program_valid;
      ] );
  ]
