(* Tests for path signatures, the path definition, and the trace recorder. *)

module Cfg = Hotpath_cfg.Cfg
module Behavior = Hotpath_vm.Behavior
module Signature = Hotpath_trace.Signature
module Path = Hotpath_trace.Path
module Path_table = Hotpath_trace.Path_table
module Recorder = Hotpath_trace.Recorder
module Prng = Hotpath_util.Prng

let record ?max_steps ?max_paths ?(seed = 99) program behavior =
  Recorder.record ?max_steps ?max_paths program behavior ~rng:(Prng.create ~seed)

(* ------------------------------------------------------------------ *)
(* Signature                                                           *)
(* ------------------------------------------------------------------ *)

let test_signature_build () =
  let b = Signature.Builder.create ~head:5 in
  Signature.Builder.add_branch b ~taken:false;
  Signature.Builder.add_branch b ~taken:true;
  Signature.Builder.add_branch b ~taken:false;
  Signature.Builder.add_branch b ~taken:true;
  let s = Signature.Builder.freeze b in
  Alcotest.(check int) "head" 5 (Signature.head s);
  Alcotest.(check int) "length" 4 (Signature.length s);
  Alcotest.(check bool) "bit0" false (Signature.bit s 0);
  Alcotest.(check bool) "bit1" true (Signature.bit s 1);
  Alcotest.(check bool) "bit3" true (Signature.bit s 3);
  Alcotest.(check string) "printed like the paper" "B5.0101" (Signature.to_string s)

let test_signature_indirect () =
  let b = Signature.Builder.create ~head:1 in
  Signature.Builder.add_branch b ~taken:true;
  Signature.Builder.add_indirect b ~target:9;
  Signature.Builder.add_indirect b ~target:4;
  let s = Signature.Builder.freeze b in
  Alcotest.(check (list int)) "targets in order" [ 9; 4 ] (Signature.indirect_targets s);
  Alcotest.(check string) "printed" "B1.1,[B9;B4]" (Signature.to_string s)

let test_signature_equal_hash () =
  let make () =
    let b = Signature.Builder.create ~head:2 in
    Signature.Builder.add_branch b ~taken:true;
    Signature.Builder.add_branch b ~taken:false;
    Signature.Builder.add_indirect b ~target:7;
    Signature.Builder.freeze b
  in
  let s1 = make () and s2 = make () in
  Alcotest.(check bool) "equal" true (Signature.equal s1 s2);
  Alcotest.(check int) "same hash" (Signature.hash s1) (Signature.hash s2);
  Alcotest.(check int) "compare 0" 0 (Signature.compare s1 s2)

let test_signature_distinguishes () =
  let base () = Signature.Builder.create ~head:2 in
  let s_taken =
    let b = base () in
    Signature.Builder.add_branch b ~taken:true;
    Signature.Builder.freeze b
  and s_not =
    let b = base () in
    Signature.Builder.add_branch b ~taken:false;
    Signature.Builder.freeze b
  and s_longer =
    let b = base () in
    Signature.Builder.add_branch b ~taken:true;
    Signature.Builder.add_branch b ~taken:false;
    Signature.Builder.freeze b
  and s_other_head =
    let b = Signature.Builder.create ~head:3 in
    Signature.Builder.add_branch b ~taken:true;
    Signature.Builder.freeze b
  in
  Alcotest.(check bool) "outcome differs" false (Signature.equal s_taken s_not);
  Alcotest.(check bool) "length differs" false (Signature.equal s_taken s_longer);
  Alcotest.(check bool) "head differs" false (Signature.equal s_taken s_other_head)

let test_signature_cap () =
  let b = Signature.Builder.create ~head:0 in
  for _ = 1 to Signature.max_branches do
    Signature.Builder.add_branch b ~taken:true
  done;
  Alcotest.check_raises "cap enforced"
    (Invalid_argument "Signature.Builder.add_branch: path branch cap exceeded")
    (fun () -> Signature.Builder.add_branch b ~taken:true)

let test_signature_reset () =
  let b = Signature.Builder.create ~head:0 in
  Signature.Builder.add_branch b ~taken:true;
  Signature.Builder.add_indirect b ~target:3;
  Signature.Builder.reset b ~head:8;
  let s = Signature.Builder.freeze b in
  Alcotest.(check int) "head" 8 (Signature.head s);
  Alcotest.(check int) "empty" 0 (Signature.length s);
  Alcotest.(check (list int)) "no indirects" [] (Signature.indirect_targets s)

let prop_signature_roundtrip =
  QCheck.Test.make ~name:"signature bits round-trip" ~count:300
    QCheck.(pair small_nat (list_of_size Gen.(0 -- 40) bool))
    (fun (head, outcomes) ->
       let b = Signature.Builder.create ~head in
       List.iter (fun taken -> Signature.Builder.add_branch b ~taken) outcomes;
       let s = Signature.Builder.freeze b in
       Signature.head s = head
       && Signature.length s = List.length outcomes
       && List.for_all2
            (fun i taken -> Signature.bit s i = taken)
            (List.init (List.length outcomes) Fun.id)
            outcomes)

(* ------------------------------------------------------------------ *)
(* Recorder: simple loop                                               *)
(* ------------------------------------------------------------------ *)

let test_simple_loop_paths () =
  let program, behavior, (b0, b1, b2, b3) = Fixtures.simple_loop ~iterations:5 () in
  let r = record program behavior in
  (* Entry path, 3x loop-body path, exit path. *)
  Alcotest.(check int) "instances" 5 (Recorder.num_instances r);
  Alcotest.(check int) "distinct paths" 3 (Recorder.num_paths r);
  let p0 = Recorder.instance_path r 0 in
  Alcotest.(check (array int)) "entry path blocks" [| b0; b1; b2 |] p0.Path.blocks;
  Alcotest.(check int) "entry path instrs" 10 p0.Path.n_instrs;
  Alcotest.(check bool) "entry ends backward" true
    (p0.Path.end_kind = Path.Backward_transfer);
  let p1 = Recorder.instance_path r 1 in
  Alcotest.(check (array int)) "loop path blocks" [| b1; b2 |] p1.Path.blocks;
  Alcotest.(check string) "loop path signature" (Printf.sprintf "B%d.1" b1)
    (Signature.to_string p1.Path.signature);
  let plast = Recorder.instance_path r 4 in
  Alcotest.(check (array int)) "exit path blocks" [| b1; b2; b3 |] plast.Path.blocks;
  Alcotest.(check bool) "exit path end" true (plast.Path.end_kind = Path.Program_end)

let test_simple_loop_arrivals () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:5 () in
  let r = record program behavior in
  Alcotest.(check bool) "first is entry" true (Recorder.arrival r 0 = Path.Entry);
  for i = 1 to 4 do
    Alcotest.(check bool) "later are loop heads" true
      (Recorder.arrival r i = Path.Loop_head)
  done

let test_simple_loop_frequencies () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:5 () in
  let r = record program behavior in
  let freq = Recorder.frequencies r in
  Array.sort compare freq;
  Alcotest.(check (array int)) "frequencies" [| 1; 1; 3 |] freq;
  Alcotest.(check int) "loop heads" 1 (Recorder.unique_loop_heads r)

let test_head_arrival_counts () =
  let program, behavior, (_, b1, _, _) = Fixtures.simple_loop ~iterations:5 () in
  let r = record program behavior in
  let counts = Recorder.head_arrival_counts r in
  Alcotest.(check (option int)) "b1 counted 4 times" (Some 4)
    (Hashtbl.find_opt counts b1)

(* ------------------------------------------------------------------ *)
(* Recorder: calls and returns                                         *)
(* ------------------------------------------------------------------ *)

let test_call_loop_paths () =
  let program, behavior, (b0, b1, b2, b3, b4, b5, b6) =
    Fixtures.call_loop ~iterations:2 ()
  in
  let r = record program behavior in
  Alcotest.(check int) "instances" 4 (Recorder.num_instances r);
  (* 1: entry path crosses the call and ends at the matched return. *)
  let p0 = Recorder.instance_path r 0 in
  Alcotest.(check (array int)) "entry path" [| b0; b1; b2; b3; b4 |] p0.Path.blocks;
  Alcotest.(check bool) "ends at matched return" true
    (p0.Path.end_kind = Path.Matched_return);
  (* 2: continuation at the return-to block, ends at the back edge. *)
  let p1 = Recorder.instance_path r 1 in
  Alcotest.(check (array int)) "continuation path" [| b5 |] p1.Path.blocks;
  Alcotest.(check bool) "continuation arrival" true
    (Recorder.arrival r 1 = Path.Continuation);
  Alcotest.(check bool) "ends backward" true (p1.Path.end_kind = Path.Backward_transfer);
  (* 3: loop-head path through the call again. *)
  let p2 = Recorder.instance_path r 2 in
  Alcotest.(check (array int)) "loop path" [| b1; b2; b3; b4 |] p2.Path.blocks;
  Alcotest.(check bool) "loop-head arrival" true (Recorder.arrival r 2 = Path.Loop_head);
  (* 4: final continuation falls through to exit. *)
  let p3 = Recorder.instance_path r 3 in
  Alcotest.(check (array int)) "exit path" [| b5; b6 |] p3.Path.blocks;
  Alcotest.(check bool) "program end" true (p3.Path.end_kind = Path.Program_end)

let test_path_extends_across_forward_return () =
  (* A path starting inside the callee extends across the (forward,
     unmatched) return: force the helper to contain a loop so a path head
     appears inside it. *)
  let b = Cfg.Builder.create ~name:"callee_loop" in
  let main = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  let helper = Cfg.Builder.add_proc b ~name:"helper" in
  let b1 = Cfg.Builder.add_block b ~proc:helper ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:helper ~weight:1 in
  let b3 = Cfg.Builder.add_block b ~proc:helper ~weight:1 in
  let b4 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  let b5 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Call { callee = helper; return_to = b4 });
  Cfg.Builder.set_term b b1 (Cfg.Jump b2);
  Cfg.Builder.set_term b b2 (Cfg.Branch { taken = b1; fallthrough = b3 });
  Cfg.Builder.set_term b b3 Cfg.Return;
  Cfg.Builder.set_term b b4 (Cfg.Jump b5);
  Cfg.Builder.set_term b b5 Cfg.Exit;
  let program = Cfg.Builder.finish b in
  let behavior = Behavior.create program () in
  Behavior.set_branch behavior b2 (Behavior.Periodic [| true; false |]);
  let r = record program behavior in
  (* Paths: [b0;b1;b2] ends backward; [b1;b2] loop head...; the last loop
     path [b1;b2;b3] crosses the return into [b4;b5]: the return is forward
     (3 -> 4) and NOT matched (the call happened on the first path), so the
     path continues across it and ends at program exit. *)
  let last = Recorder.instance_path r (Recorder.num_instances r - 1) in
  Alcotest.(check (array int)) "crosses unmatched forward return"
    [| b1; b2; b3; b4; b5 |] last.Path.blocks

let test_recursive_backward_call_heads () =
  let program, behavior, (_, _, b2, _, _, _) = Fixtures.recursive ~depth:3 () in
  let r = record ~max_steps:200 program behavior in
  (* The backward recursive call makes the callee entry a loop head. *)
  let has_loop_head_at_entry = ref false in
  for i = 0 to Recorder.num_instances r - 1 do
    if
      Recorder.arrival r i = Path.Loop_head
      && Path.head (Recorder.instance_path r i) = b2
    then has_loop_head_at_entry := true
  done;
  Alcotest.(check bool) "recursive entry is a loop head" true !has_loop_head_at_entry

(* ------------------------------------------------------------------ *)
(* Recorder: indirect branches, cap, fuel, invariants                  *)
(* ------------------------------------------------------------------ *)

let test_indirect_in_signature () =
  let program, behavior, (_, _, _, b3, b4, _, _) =
    Fixtures.indirect_loop ~weights:[| 0.5; 0.5 |] ~exit_prob:0.3 ()
  in
  let r = record ~max_steps:2000 program behavior in
  let saw_indirect = ref false in
  Path_table.iter
    (fun p ->
       match Signature.indirect_targets p.Path.signature with
       | [] -> ()
       | targets ->
         saw_indirect := true;
         List.iter
           (fun t ->
              Alcotest.(check bool) "target is b3 or b4" true (t = b3 || t = b4))
           targets)
    r.Recorder.table;
  Alcotest.(check bool) "indirect targets recorded" true !saw_indirect

let test_cap_path () =
  (* A long forward chain of branches with no backward edge: the path must
     end at the cap and continue with a Continuation head. *)
  let n = Signature.max_branches + 20 in
  let b = Cfg.Builder.create ~name:"long_chain" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let ids = Array.init (n + 1) (fun _ -> Cfg.Builder.add_block b ~proc:p ~weight:1) in
  for i = 0 to n - 1 do
    Cfg.Builder.set_term b ids.(i)
      (Cfg.Branch { taken = ids.(i + 1); fallthrough = ids.(i + 1) })
  done;
  Cfg.Builder.set_term b ids.(n) Cfg.Exit;
  let program = Cfg.Builder.finish b in
  let behavior = Behavior.create program () in
  let r = record program behavior in
  Alcotest.(check int) "two paths" 2 (Recorder.num_instances r);
  let first = Recorder.instance_path r 0 in
  Alcotest.(check bool) "first capped" true (first.Path.end_kind = Path.Cap);
  Alcotest.(check int) "cap length" Signature.max_branches first.Path.n_branches;
  Alcotest.(check bool) "second is continuation" true
    (Recorder.arrival r 1 = Path.Continuation)

let test_fuel_drops_partial () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:1_000_000 () in
  (* 8 executed blocks: b0 b1 b2 | b1 b2 | b1 b2 | b1(partial).  The
     truncated partial is discarded — it is not a completed path and could
     collide with a completed one — so 7 blocks are recorded. *)
  let r = record ~max_steps:8 program behavior in
  Alcotest.(check int) "completed paths only" 7
    (List.length (Recorder.block_trace r));
  Alcotest.(check int) "three instances" 3 (Recorder.num_instances r);
  (* Natural program exit completes the in-flight path instead. *)
  let program', behavior', _ = Fixtures.simple_loop ~iterations:3 () in
  let r' = record program' behavior' in
  let last = Recorder.instance_path r' (Recorder.num_instances r' - 1) in
  Alcotest.(check bool) "exit path recorded as program end" true
    (last.Path.end_kind = Path.Program_end)

let test_max_paths_stops () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:1_000_000 () in
  let r = record ~max_paths:10 program behavior in
  Alcotest.(check int) "stopped at max paths" 10 (Recorder.num_instances r)

let test_block_trace_partition () =
  (* Concatenating recorded paths' blocks reproduces the executed block
     sequence exactly (checked against a fresh VM run with the same seed). *)
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.1 () in
  let r = record ~max_steps:500 ~seed:7 program behavior in
  let vm =
    Hotpath_vm.Vm.create program behavior ~rng:(Prng.create ~seed:7)
  in
  let blocks = ref [] in
  let _ =
    Hotpath_vm.Vm.run ~max_steps:500 vm ~on_transfer:(fun tr ->
        blocks := tr.Hotpath_vm.Vm.src :: !blocks)
  in
  Alcotest.(check (list int)) "partition invariant" (List.rev !blocks)
    (Recorder.block_trace r)

let test_recorder_determinism () =
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.05 () in
  let r1 = record ~max_steps:2000 ~seed:3 program behavior in
  let r2 = record ~max_steps:2000 ~seed:3 program behavior in
  Alcotest.(check (array int)) "same instance sequence" r1.Recorder.instances
    r2.Recorder.instances

(* ------------------------------------------------------------------ *)
(* Path_table                                                          *)
(* ------------------------------------------------------------------ *)

let test_path_table_interning () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:50 () in
  let r = record program behavior in
  let table = r.Recorder.table in
  Alcotest.(check int) "3 paths for 50 iterations" 3 (Path_table.size table);
  Path_table.iter
    (fun p ->
       Alcotest.(check bool) "find by signature" true
         (Path_table.find table p.Path.signature = Some p.Path.id))
    table;
  Alcotest.check_raises "unknown id" (Invalid_argument "Path_table.path: unknown id 99")
    (fun () -> ignore (Path_table.path table 99))

let test_path_divergence () =
  let mk blocks =
    let b = Signature.Builder.create ~head:blocks.(0) in
    {
      Path.id = 0;
      signature = Signature.Builder.freeze b;
      blocks;
      n_instrs = Array.length blocks;
      n_branches = 0;
      end_kind = Path.Backward_transfer;
    }
  in
  let p1 = mk [| 1; 2; 3; 4 |] and p2 = mk [| 1; 2; 9; 4 |] and p3 = mk [| 1; 2 |] in
  Alcotest.(check (option int)) "diverges at 2" (Some 2) (Path.divergence p1 p2);
  Alcotest.(check (option int)) "prefix" None (Path.divergence p1 p3);
  Alcotest.(check (option int)) "equal" None (Path.divergence p1 p1)

let test_unique_heads () =
  let program, behavior, _ = Fixtures.call_loop ~iterations:3 () in
  let r = record program behavior in
  let heads = Path_table.unique_heads r.Recorder.table in
  Alcotest.(check bool) "sorted ascending" true
    (List.sort Int.compare heads = heads);
  Alcotest.(check bool) "at least entry + loop + continuation heads" true
    (List.length heads >= 3)

let suites =
  [
    ( "trace.signature",
      [
        Alcotest.test_case "build" `Quick test_signature_build;
        Alcotest.test_case "indirect" `Quick test_signature_indirect;
        Alcotest.test_case "equal/hash" `Quick test_signature_equal_hash;
        Alcotest.test_case "distinguishes" `Quick test_signature_distinguishes;
        Alcotest.test_case "cap" `Quick test_signature_cap;
        Alcotest.test_case "reset" `Quick test_signature_reset;
        QCheck_alcotest.to_alcotest prop_signature_roundtrip;
      ] );
    ( "trace.recorder",
      [
        Alcotest.test_case "simple loop paths" `Quick test_simple_loop_paths;
        Alcotest.test_case "simple loop arrivals" `Quick test_simple_loop_arrivals;
        Alcotest.test_case "simple loop frequencies" `Quick test_simple_loop_frequencies;
        Alcotest.test_case "head arrival counts" `Quick test_head_arrival_counts;
        Alcotest.test_case "call loop paths" `Quick test_call_loop_paths;
        Alcotest.test_case "crosses forward return" `Quick
          test_path_extends_across_forward_return;
        Alcotest.test_case "recursive backward call" `Quick
          test_recursive_backward_call_heads;
        Alcotest.test_case "indirect in signature" `Quick test_indirect_in_signature;
        Alcotest.test_case "cap path" `Quick test_cap_path;
        Alcotest.test_case "fuel drops partial" `Quick test_fuel_drops_partial;
        Alcotest.test_case "max paths stops" `Quick test_max_paths_stops;
        Alcotest.test_case "block trace partition" `Quick test_block_trace_partition;
        Alcotest.test_case "determinism" `Quick test_recorder_determinism;
      ] );
    ( "trace.path_table",
      [
        Alcotest.test_case "interning" `Quick test_path_table_interning;
        Alcotest.test_case "divergence" `Quick test_path_divergence;
        Alcotest.test_case "unique heads" `Quick test_unique_heads;
      ] );
  ]
