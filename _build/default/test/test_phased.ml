(* Tests for the phase-aware metrics (the paper's Section 6.1 future work)
   and the phase-change experiment. *)

module Recorder = Hotpath_trace.Recorder
module Phased = Hotpath_metrics.Phased
module Net = Hotpath_prediction.Net
module Path_profile = Hotpath_prediction.Path_profile
module Scheme = Hotpath_prediction.Scheme
module Suite = Hotpath_workloads.Suite
module Phases = Hotpath_experiments.Phases
module Prng = Hotpath_util.Prng

let record_simple ?(iterations = 2_000) () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations () in
  Recorder.record program behavior ~rng:(Prng.create ~seed:3)

let run ?(delay = 10) ?(window = 500) ?(retirement = Phased.No_retirement)
    ?(threshold = 0.01) r =
  Phased.run (module Net : Scheme.S) ~delay ~window ~retirement ~threshold r

(* ------------------------------------------------------------------ *)
(* Steady workload: windowed metrics reduce to the accumulated ones.   *)
(* ------------------------------------------------------------------ *)

let test_steady_high_hit_rate () =
  let r = record_simple () in
  let o = run r in
  Alcotest.(check bool)
    (Printf.sprintf "hit %.1f high on steady loop" o.Phased.avg_hit_rate)
    true
    (o.Phased.avg_hit_rate > 95.0);
  Alcotest.(check int) "nothing retired without a policy" 0 o.Phased.retired

let test_window_rows_cover_trace () =
  let r = record_simple ~iterations:2_000 () in
  let o = run ~window:500 r in
  Alcotest.(check int) "window count" 4 (List.length o.Phased.windows);
  let total = List.fold_left (fun acc w -> acc + w.Phased.w_flow) 0 o.Phased.windows in
  Alcotest.(check int) "flows sum to trace" (Recorder.num_instances r) total

let test_window_hot_sets_local () =
  let r = record_simple () in
  let o = run r in
  List.iter
    (fun w ->
       Alcotest.(check bool) "hot flow bounded by window flow" true
         (w.Phased.w_hot_flow <= w.Phased.w_flow);
       Alcotest.(check bool) "hits bounded by hot flow" true
         (w.Phased.w_hits <= w.Phased.w_hot_flow))
    o.Phased.windows

let test_validation () =
  let r = record_simple ~iterations:50 () in
  let bad f = match f () with
    | exception Invalid_argument _ -> ()
    | (_ : Phased.outcome) -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> run ~window:0 r);
  bad (fun () -> run ~delay:0 r);
  bad (fun () -> run ~threshold:0.0 r);
  bad (fun () -> run ~retirement:(Phased.Flush_every 0) r);
  bad (fun () ->
      run ~retirement:(Phased.Flush_on_spike { window = 0; factor = 1.0; min_preds = 1 }) r)

(* ------------------------------------------------------------------ *)
(* Retirement policies                                                 *)
(* ------------------------------------------------------------------ *)

let phased_recording = lazy (Suite.record_phased ~max_paths:60_000 ())

let test_flush_every_retires () =
  let r = Lazy.force phased_recording in
  let o = run ~delay:20 ~window:8_192 ~retirement:(Phased.Flush_every 10_000)
      ~threshold:0.001 r
  in
  Alcotest.(check bool) "retires predictions" true (o.Phased.retired > 0)

let test_ttl_retires_stale () =
  let r = Lazy.force phased_recording in
  let none =
    run ~delay:20 ~window:8_192 ~retirement:Phased.No_retirement ~threshold:0.001 r
  in
  let ttl =
    run ~delay:20 ~window:8_192 ~retirement:(Phased.Ttl 5_000) ~threshold:0.001 r
  in
  Alcotest.(check bool) "ttl retires" true (ttl.Phased.retired > 0);
  let live o =
    match List.rev o.Phased.windows with
    | last :: _ -> last.Phased.w_live_predictions
    | [] -> 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "ttl keeps the set smaller (%d < %d)" (live ttl) (live none))
    true
    (live ttl < live none)

let test_no_retirement_accumulates_stale () =
  let r = Lazy.force phased_recording in
  let o =
    run ~delay:20 ~window:8_192 ~retirement:Phased.No_retirement ~threshold:0.001 r
  in
  Alcotest.(check bool)
    (Printf.sprintf "stale fraction %.2f grows across phases" o.Phased.avg_stale_fraction)
    true
    (o.Phased.avg_stale_fraction > 0.1)

let test_flush_every_caps_staleness () =
  let r = Lazy.force phased_recording in
  let none =
    run ~delay:20 ~window:8_192 ~retirement:Phased.No_retirement ~threshold:0.001 r
  in
  let flush =
    run ~delay:20 ~window:8_192 ~retirement:(Phased.Flush_every 10_000)
      ~threshold:0.001 r
  in
  Alcotest.(check bool)
    (Printf.sprintf "flushing reduces staleness (%.2f < %.2f)"
       flush.Phased.avg_stale_fraction none.Phased.avg_stale_fraction)
    true
    (flush.Phased.avg_stale_fraction < none.Phased.avg_stale_fraction)

let test_windowed_vs_accumulated_on_phased () =
  (* The point of Section 6.1: accumulated metrics hide phase structure;
     the windowed hit rate is what a cache-resident consumer experiences.
     On the phased workload both are high for NET (it re-predicts fast),
     but windowed hot sets must be non-trivial in every window. *)
  let r = Lazy.force phased_recording in
  let o =
    run ~delay:20 ~window:8_192 ~retirement:Phased.No_retirement ~threshold:0.001 r
  in
  List.iter
    (fun w ->
       Alcotest.(check bool)
         (Printf.sprintf "window %d has a hot set" w.Phased.w_index)
         true
         (w.Phased.w_hot_paths > 0))
    o.Phased.windows

let test_deterministic () =
  let r = Lazy.force phased_recording in
  let o1 = run ~delay:20 ~window:8_192 ~retirement:(Phased.Ttl 5_000) ~threshold:0.001 r in
  let o2 = run ~delay:20 ~window:8_192 ~retirement:(Phased.Ttl 5_000) ~threshold:0.001 r in
  Alcotest.(check (float 1e-9)) "same hit rate" o1.Phased.avg_hit_rate
    o2.Phased.avg_hit_rate;
  Alcotest.(check int) "same retired" o1.Phased.retired o2.Phased.retired

(* ------------------------------------------------------------------ *)
(* Experiment driver                                                   *)
(* ------------------------------------------------------------------ *)

let test_phases_experiment_rows () =
  let rows = Phases.compute ~max_paths:60_000 () in
  Alcotest.(check int) "four policies" 4 (List.length rows);
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: rates in range" r.Phases.r_policy)
         true
         (r.Phases.r_hit_rate >= 0.0 && r.Phases.r_hit_rate <= 100.0
          && r.Phases.r_stale_fraction >= 0.0
          && r.Phases.r_stale_fraction <= 1.0))
    rows;
  let get name = List.find (fun r -> r.Phases.r_policy = name) rows in
  Alcotest.(check bool) "flushing trades hit rate for freshness" true
    ((get "flush-every-20k").Phases.r_stale_fraction
     < (get "no-retirement").Phases.r_stale_fraction)

let suites =
  [
    ( "metrics.phased",
      [
        Alcotest.test_case "steady high hit rate" `Quick test_steady_high_hit_rate;
        Alcotest.test_case "windows cover trace" `Quick test_window_rows_cover_trace;
        Alcotest.test_case "window hot sets local" `Quick test_window_hot_sets_local;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "flush-every retires" `Quick test_flush_every_retires;
        Alcotest.test_case "ttl retires stale" `Quick test_ttl_retires_stale;
        Alcotest.test_case "no retirement accumulates stale" `Quick
          test_no_retirement_accumulates_stale;
        Alcotest.test_case "flushing caps staleness" `Quick
          test_flush_every_caps_staleness;
        Alcotest.test_case "hot set per window" `Quick
          test_windowed_vs_accumulated_on_phased;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
      ] );
    ( "experiments.phases",
      [ Alcotest.test_case "policy rows" `Quick test_phases_experiment_rows ] );
  ]
