(* Tests for the offline profiling substrates: Ball-Larus, bit tracing,
   Young-Smith. *)

module Cfg = Hotpath_cfg.Cfg
module Vm = Hotpath_vm.Vm
module Behavior = Hotpath_vm.Behavior
module Prng = Hotpath_util.Prng
module Ball_larus = Hotpath_profiling.Ball_larus
module Bit_tracing = Hotpath_profiling.Bit_tracing
module Young_smith = Hotpath_profiling.Young_smith
module Recorder = Hotpath_trace.Recorder
module Path = Hotpath_trace.Path

(* ------------------------------------------------------------------ *)
(* Ball-Larus: static numbering                                        *)
(* ------------------------------------------------------------------ *)

(* Diamond: A -> {B,C} -> D -> exit. *)
let diamond () =
  let b = Cfg.Builder.create ~name:"diamond" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let a = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let c = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let d = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b a (Cfg.Branch { taken = c; fallthrough = b1 });
  Cfg.Builder.set_term b b1 (Cfg.Jump d);
  Cfg.Builder.set_term b c (Cfg.Jump d);
  Cfg.Builder.set_term b d Cfg.Exit;
  (Cfg.Builder.finish b, (a, b1, c, d))

let test_bl_diamond () =
  let program, (a, b1, c, d) = diamond () in
  let t = Ball_larus.analyze program ~proc:0 in
  Alcotest.(check int) "two paths" 2 (Ball_larus.num_paths t);
  let paths = Ball_larus.enumerate t in
  Alcotest.(check int) "enumerated" 2 (Array.length paths);
  let sorted = Array.to_list paths |> List.sort compare in
  Alcotest.(check (list (list int))) "both diamond sides"
    [ [ a; b1; d ]; [ a; c; d ] ]
    sorted

let test_bl_numbers_dense_unique () =
  let program, _ = diamond () in
  let t = Ball_larus.analyze program ~proc:0 in
  let paths = Ball_larus.enumerate t in
  Array.iteri
    (fun i blocks ->
       Alcotest.(check int) "roundtrip" i
         (Ball_larus.path_number t blocks))
    paths

let test_bl_simple_loop () =
  let program, _, (b0, b1, b2, b3) = Fixtures.simple_loop () in
  let t = Ball_larus.analyze program ~proc:0 in
  (* Starts: entry b0 or loop head b1; ends: back edge at b2 or exit after
     b3 -> 4 acyclic paths. *)
  Alcotest.(check int) "four paths" 4 (Ball_larus.num_paths t);
  let paths = Ball_larus.enumerate t |> Array.to_list |> List.sort compare in
  Alcotest.(check (list (list int))) "path shapes"
    [ [ b0; b1; b2 ]; [ b0; b1; b2; b3 ]; [ b1; b2 ]; [ b1; b2; b3 ] ]
    paths

let test_bl_regenerate_bounds () =
  let program, _ = diamond () in
  let t = Ball_larus.analyze program ~proc:0 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Ball_larus.regenerate: -1 outside [0,2)") (fun () ->
      ignore (Ball_larus.regenerate t (-1)));
  Alcotest.check_raises "too big"
    (Invalid_argument "Ball_larus.regenerate: 2 outside [0,2)") (fun () ->
      ignore (Ball_larus.regenerate t 2))

let test_bl_spanning_tree_reduces_instrumentation () =
  let program, _, _ = Fixtures.simple_loop () in
  let t = Ball_larus.analyze program ~proc:0 in
  Alcotest.(check bool) "chords < edges" true
    (Ball_larus.num_chords t < Ball_larus.num_edges t);
  (* Tree has (#nodes - 1) edges; with the forced EXIT->ENTRY edge the
     chord count is  #edges + 1 - (#nodes - 1)  when the graph is
     connected. *)
  let nodes =
    let procedure = Cfg.proc program 0 in
    Array.length procedure.Cfg.blocks + 2
  in
  Alcotest.(check int) "chord count"
    (Ball_larus.num_edges t + 1 - (nodes - 1))
    (Ball_larus.num_chords t)

(* Sum of chord increments along a path equals its number. *)
let chord_sum t blocks =
  let edges = Ball_larus.edges t in
  let find_pseudo_entry dst =
    List.find
      (fun e ->
         e.Ball_larus.e_kind = Ball_larus.Pseudo_entry
         && e.Ball_larus.e_dst = Ball_larus.Block dst)
      edges
  in
  let find_real src dst =
    List.find
      (fun e ->
         e.Ball_larus.e_kind = Ball_larus.Real
         && e.Ball_larus.e_src = Ball_larus.Block src
         && e.Ball_larus.e_dst = Ball_larus.Block dst)
      edges
  in
  let find_exit src =
    List.find
      (fun e ->
         (e.Ball_larus.e_kind = Ball_larus.To_exit
          || e.Ball_larus.e_kind = Ball_larus.Pseudo_exit)
         && e.Ball_larus.e_src = Ball_larus.Block src)
      edges
  in
  let rec walk acc = function
    | [] -> acc
    | [ last ] -> acc + (find_exit last).Ball_larus.e_inc
    | x :: (y :: _ as rest) -> walk (acc + (find_real x y).Ball_larus.e_inc) rest
  in
  match blocks with
  | [] -> 0
  | first :: _ -> walk (find_pseudo_entry first).Ball_larus.e_inc blocks

let test_bl_chord_increments_sum_to_number () =
  let program, _, _ = Fixtures.simple_loop () in
  let t = Ball_larus.analyze program ~proc:0 in
  Array.iteri
    (fun i blocks ->
       Alcotest.(check int) "inc sum = path number" i (chord_sum t blocks))
    (Ball_larus.enumerate t)

(* Random forward DAGs: every block i < n-1 branches to two distinct
   higher-numbered blocks; block n-1 exits. *)
let random_dag_program seed n =
  let rng = Prng.create ~seed in
  let b = Cfg.Builder.create ~name:(Printf.sprintf "dag%d" seed) in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let ids = Array.init n (fun _ -> Cfg.Builder.add_block b ~proc:p ~weight:1) in
  for i = 0 to n - 2 do
    let pick_target () = ids.(i + 1 + Prng.int rng ~bound:(n - 1 - i)) in
    if i = n - 2 then Cfg.Builder.set_term b ids.(i) (Cfg.Jump ids.(n - 1))
    else begin
      let taken = pick_target () in
      let rec pick_other () =
        let f = pick_target () in
        if f = taken && n - 1 - i > 1 then pick_other () else f
      in
      let fallthrough = pick_other () in
      if taken = fallthrough then Cfg.Builder.set_term b ids.(i) (Cfg.Jump taken)
      else Cfg.Builder.set_term b ids.(i) (Cfg.Branch { taken; fallthrough })
    end
  done;
  Cfg.Builder.set_term b ids.(n - 1) Cfg.Exit;
  Cfg.Builder.finish b

let prop_bl_random_dags =
  QCheck.Test.make ~name:"BL numbering dense+unique, incs sum on random DAGs"
    ~count:100
    QCheck.(pair (int_bound 10_000) (int_range 2 9))
    (fun (seed, n) ->
       let program = random_dag_program seed n in
       let t = Ball_larus.analyze program ~proc:0 in
       let paths = Ball_larus.enumerate t in
       Array.length paths = Ball_larus.num_paths t
       && Array.for_all
            (fun blocks -> List.length blocks > 0)
            paths
       &&
       let ok = ref true in
       Array.iteri
         (fun i blocks ->
            if Ball_larus.path_number t blocks <> i then ok := false;
            if chord_sum t blocks <> i then ok := false)
         paths;
       (* Distinctness: dense numbering of distinct regenerations. *)
       let tbl = Hashtbl.create 16 in
       Array.iter
         (fun blocks ->
            if Hashtbl.mem tbl blocks then ok := false;
            Hashtbl.add tbl blocks ())
         paths;
       !ok)

(* ------------------------------------------------------------------ *)
(* Ball-Larus: runtime                                                 *)
(* ------------------------------------------------------------------ *)

let run_bl_runtime ?(max_steps = 100_000) ?(seed = 5) program behavior =
  let rt = Ball_larus.Runtime.create program in
  let vm = Vm.create program behavior ~rng:(Prng.create ~seed) in
  let _ =
    Vm.run ~max_steps vm ~on_transfer:(fun tr -> Ball_larus.Runtime.on_transfer rt tr)
  in
  rt

let test_bl_runtime_simple_loop () =
  let program, behavior, (b0, b1, b2, b3) = Fixtures.simple_loop ~iterations:5 () in
  let rt = run_bl_runtime program behavior in
  let t = Ball_larus.Runtime.analysis rt 0 in
  let counts = Ball_larus.Runtime.counts rt 0 in
  Alcotest.(check int) "total counted" 5 (Ball_larus.Runtime.total_counted rt);
  let decoded =
    List.map (fun (n, c) -> (Ball_larus.regenerate t n, c)) counts
    |> List.sort compare
  in
  Alcotest.(check (list (pair (list int) int))) "decoded counts"
    [ ([ b0; b1; b2 ], 1); ([ b1; b2 ], 3); ([ b1; b2; b3 ], 1) ]
    decoded

let test_bl_runtime_calls () =
  let program, behavior, (_, _, _, b3, b4, _, _) = Fixtures.call_loop ~iterations:3 () in
  let rt = run_bl_runtime program behavior in
  (* Helper (proc 1) runs 3 times, one straight-line path b3;b4. *)
  let t1 = Ball_larus.Runtime.analysis rt 1 in
  let counts = Ball_larus.Runtime.counts rt 1 in
  (match counts with
   | [ (n, c) ] ->
     Alcotest.(check int) "helper count" 3 c;
     Alcotest.(check (list int)) "helper path" [ b3; b4 ] (Ball_larus.regenerate t1 n)
   | other -> Alcotest.failf "expected one helper path, got %d" (List.length other));
  Alcotest.(check bool) "counter space sane" true
    (Ball_larus.Runtime.counter_space rt >= 2)

let test_bl_runtime_ops_bounded () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:100 () in
  let rt = run_bl_runtime program behavior in
  (* Spanning-tree scheme: strictly fewer increment ops than executed
     transfers would be charged by naive all-edges instrumentation. *)
  Alcotest.(check bool) "ops positive" true (Ball_larus.Runtime.instrumented_ops rt > 0);
  Alcotest.(check bool) "ops bounded by transfers" true
    (Ball_larus.Runtime.instrumented_ops rt < 3 * 100 * 2)

let test_bl_runtime_matches_trace_paths_on_intraproc () =
  (* For a single-procedure program with only forward/backward branches the
     BL runtime's counted paths coincide with the recorder's path
     instances (same segmentation: backward edges and exit). *)
  let program, behavior, _ = Fixtures.simple_loop ~iterations:37 () in
  let rt = run_bl_runtime program behavior in
  let r =
    Recorder.record program behavior ~rng:(Prng.create ~seed:5)
  in
  Alcotest.(check int) "same number of counted paths"
    (Recorder.num_instances r)
    (Ball_larus.Runtime.total_counted rt)

(* ------------------------------------------------------------------ *)
(* Bit tracing                                                         *)
(* ------------------------------------------------------------------ *)

let test_bit_tracing_profile () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:10 () in
  let r = Recorder.record program behavior ~rng:(Prng.create ~seed:1) in
  let p = Bit_tracing.profile r in
  Alcotest.(check int) "total flow" 10 p.Bit_tracing.total_flow;
  Alcotest.(check int) "counter space" 3 p.Bit_tracing.counter_space;
  Alcotest.(check int) "table updates" 10 p.Bit_tracing.table_updates;
  (* Every instance executes exactly one conditional branch here. *)
  Alcotest.(check int) "shift ops" 10 p.Bit_tracing.shift_ops;
  (match Array.to_list p.Bit_tracing.entries with
   | (hot, freq) :: _ ->
     Alcotest.(check int) "hottest is the loop body" 8 freq;
     Alcotest.(check int) "loop body length" 2 (Array.length hot.Path.blocks)
   | [] -> Alcotest.fail "no entries")

let test_bit_tracing_hot_set () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:1000 () in
  let r = Recorder.record program behavior ~rng:(Prng.create ~seed:1) in
  let p = Bit_tracing.profile r in
  let hot = Bit_tracing.hot_set p ~threshold:0.001 in
  (* Loop body dominates; entry and exit paths are below 0.1%. *)
  Alcotest.(check int) "only the loop body is hot" 1 (Array.length hot);
  let cov = Bit_tracing.coverage p hot in
  Alcotest.(check bool) "coverage > 99%" true (cov > 99.0);
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Bit_tracing.hot_set: threshold must be in (0,1)") (fun () ->
      ignore (Bit_tracing.hot_set p ~threshold:0.0))

(* ------------------------------------------------------------------ *)
(* Young-Smith                                                         *)
(* ------------------------------------------------------------------ *)

let feed_ys ?(max_steps = 100_000) ~k ?(seed = 5) program behavior =
  let ys = Young_smith.create ~k in
  let vm = Vm.create program behavior ~rng:(Prng.create ~seed) in
  let _ = Vm.run ~max_steps vm ~on_transfer:(fun tr -> Young_smith.on_transfer ys tr) in
  ys

let test_ys_k1_counts_branch_outcomes () =
  let program, behavior, (_, _, b2, _) = Fixtures.simple_loop ~iterations:10 () in
  let ys = feed_ys ~k:1 program behavior in
  Alcotest.(check int) "branches seen" 10 (Young_smith.branches_seen ys);
  let counts = Young_smith.counts ys in
  Alcotest.(check int) "two windows (taken / not taken)" 2 (List.length counts);
  let taken_count =
    List.assoc { Young_smith.w_branches = [| (b2, true) |] } counts
  in
  Alcotest.(check int) "taken 9 of 10" 9 taken_count

let test_ys_k2_windows () =
  let program, behavior, (_, _, b2, _) = Fixtures.simple_loop ~iterations:5 () in
  let ys = feed_ys ~k:2 program behavior in
  (* Outcomes: T T T T F -> windows: TT TT TT TF. *)
  let counts = Young_smith.counts ys in
  let get w = Option.value ~default:0 (List.assoc_opt w counts) in
  Alcotest.(check int) "TT x3" 3
    (get { Young_smith.w_branches = [| (b2, true); (b2, true) |] });
  Alcotest.(check int) "TF x1" 1
    (get { Young_smith.w_branches = [| (b2, true); (b2, false) |] });
  Alcotest.(check int) "counter space" 2 (Young_smith.counter_space ys)

let test_ys_warmup_not_counted () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:3 () in
  let ys = feed_ys ~k:8 program behavior in
  (* Only 3 branches execute: shorter than k, nothing counted. *)
  Alcotest.(check int) "nothing counted" 0 (Young_smith.counter_space ys)

let test_ys_invalid_k () =
  Alcotest.check_raises "k too small"
    (Invalid_argument "Young_smith.create: k must be in [1,32]") (fun () ->
      ignore (Young_smith.create ~k:0));
  Alcotest.check_raises "k too big"
    (Invalid_argument "Young_smith.create: k must be in [1,32]") (fun () ->
      ignore (Young_smith.create ~k:33))

let test_ys_top_and_to_string () =
  let program, behavior, (_, _, b2, _) = Fixtures.simple_loop ~iterations:10 () in
  let ys = feed_ys ~k:1 program behavior in
  (match Young_smith.top ys ~n:1 with
   | [ (w, c) ] ->
     Alcotest.(check int) "hottest count" 9 c;
     Alcotest.(check string) "rendering" (Printf.sprintf "(B%d:1)" b2)
       (Young_smith.window_to_string w)
   | _ -> Alcotest.fail "expected exactly one");
  Alcotest.(check int) "top n clamps" 2 (List.length (Young_smith.top ys ~n:10))

let suites =
  [
    ( "profiling.ball_larus",
      [
        Alcotest.test_case "diamond" `Quick test_bl_diamond;
        Alcotest.test_case "dense unique numbers" `Quick test_bl_numbers_dense_unique;
        Alcotest.test_case "simple loop DAG" `Quick test_bl_simple_loop;
        Alcotest.test_case "regenerate bounds" `Quick test_bl_regenerate_bounds;
        Alcotest.test_case "spanning tree reduces instrumentation" `Quick
          test_bl_spanning_tree_reduces_instrumentation;
        Alcotest.test_case "chord increments sum" `Quick
          test_bl_chord_increments_sum_to_number;
        QCheck_alcotest.to_alcotest prop_bl_random_dags;
      ] );
    ( "profiling.ball_larus.runtime",
      [
        Alcotest.test_case "simple loop counts" `Quick test_bl_runtime_simple_loop;
        Alcotest.test_case "calls" `Quick test_bl_runtime_calls;
        Alcotest.test_case "ops bounded" `Quick test_bl_runtime_ops_bounded;
        Alcotest.test_case "matches recorder segmentation" `Quick
          test_bl_runtime_matches_trace_paths_on_intraproc;
      ] );
    ( "profiling.bit_tracing",
      [
        Alcotest.test_case "profile" `Quick test_bit_tracing_profile;
        Alcotest.test_case "hot set" `Quick test_bit_tracing_hot_set;
      ] );
    ( "profiling.young_smith",
      [
        Alcotest.test_case "k=1 outcome counts" `Quick test_ys_k1_counts_branch_outcomes;
        Alcotest.test_case "k=2 windows" `Quick test_ys_k2_windows;
        Alcotest.test_case "warm-up not counted" `Quick test_ys_warmup_not_counted;
        Alcotest.test_case "invalid k" `Quick test_ys_invalid_k;
        Alcotest.test_case "top / to_string" `Quick test_ys_top_and_to_string;
      ] );
  ]
