test/test_profiling.ml: Alcotest Array Fixtures Hashtbl Hotpath_cfg Hotpath_profiling Hotpath_trace Hotpath_util Hotpath_vm List Option Printf QCheck QCheck_alcotest
