test/test_util.ml: Alcotest Array Fun Hotpath_util List QCheck QCheck_alcotest String
