test/test_metrics.ml: Alcotest Fixtures Hotpath_metrics Hotpath_prediction Hotpath_trace Hotpath_util Int List Printf QCheck QCheck_alcotest
