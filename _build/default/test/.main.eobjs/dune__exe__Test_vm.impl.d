test/test_vm.ml: Alcotest Fixtures Hotpath_cfg Hotpath_util Hotpath_vm List Printf String
