test/test_segmenter.ml: Alcotest Array Fixtures Hotpath_cfg Hotpath_trace Hotpath_util Hotpath_vm List
