test/test_ablations.ml: Alcotest Array Hotpath_experiments Hotpath_util Hotpath_workloads Lazy List Printf String
