test/test_cfg.ml: Alcotest Array Fixtures Format Hotpath_cfg String
