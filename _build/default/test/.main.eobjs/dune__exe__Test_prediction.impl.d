test/test_prediction.ml: Alcotest Array Fixtures Hotpath_cfg Hotpath_prediction Hotpath_trace Hotpath_util Int List QCheck QCheck_alcotest
