test/test_trace.ml: Alcotest Array Fixtures Fun Gen Hashtbl Hotpath_cfg Hotpath_trace Hotpath_util Hotpath_vm Int List Printf QCheck QCheck_alcotest
