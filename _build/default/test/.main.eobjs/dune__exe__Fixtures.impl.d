test/fixtures.ml: Array Hotpath_cfg Hotpath_vm
