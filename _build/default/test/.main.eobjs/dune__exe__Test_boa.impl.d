test/test_boa.ml: Alcotest Array Fixtures Hashtbl Hotpath_cfg Hotpath_metrics Hotpath_prediction Hotpath_trace Hotpath_util Hotpath_vm Hotpath_workloads List Printf
