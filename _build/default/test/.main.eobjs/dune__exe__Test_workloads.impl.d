test/test_workloads.ml: Alcotest Array Hashtbl Hotpath_cfg Hotpath_trace Hotpath_util Hotpath_vm Hotpath_workloads List Printf
