test/main.mli:
