test/test_experiments.ml: Alcotest Hotpath_experiments Hotpath_metrics Hotpath_workloads Lazy List Printf
