test/test_serialize.ml: Alcotest Array Bytes Char Filename Fixtures Fun Hotpath_prediction Hotpath_trace Hotpath_util Hotpath_vm Hotpath_workloads List String Sys
