(* Tests for the workload generator, the Figure 1 fixture, and the
   benchmark suite. *)

module Cfg = Hotpath_cfg.Cfg
module Vm = Hotpath_vm.Vm
module Behavior = Hotpath_vm.Behavior
module Signature = Hotpath_trace.Signature
module Path = Hotpath_trace.Path
module Recorder = Hotpath_trace.Recorder
module Generator = Hotpath_workloads.Generator
module Figure1 = Hotpath_workloads.Figure1
module Suite = Hotpath_workloads.Suite
module Prng = Hotpath_util.Prng

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let tiny_spec ?(phase_steps = None) ?(loops = [ (2, Generator.loop ~branches:3 ()) ])
    ?(procs = 1) () =
  { Generator.g_name = "tiny"; g_loops = loops; g_procs = procs;
    g_phase_steps = phase_steps }

let test_generator_builds_valid_program () =
  let program, behavior = Generator.build (tiny_spec ()) ~seed:1 in
  Alcotest.(check bool) "program valid" true (Cfg.validate program = Ok ());
  Alcotest.(check bool) "behavior valid" true (Behavior.validate behavior = Ok ())

let test_generator_deterministic () =
  let p1, _ = Generator.build (tiny_spec ()) ~seed:42 in
  let p2, _ = Generator.build (tiny_spec ()) ~seed:42 in
  Alcotest.(check int) "same block count" (Array.length p1.Cfg.blocks)
    (Array.length p2.Cfg.blocks);
  Array.iter2
    (fun (a : Cfg.block) (b : Cfg.block) ->
       Alcotest.(check int) "same weight" a.Cfg.weight b.Cfg.weight)
    p1.Cfg.blocks p2.Cfg.blocks

let test_generator_seed_sensitivity () =
  let p1, _ = Generator.build (tiny_spec ()) ~seed:1 in
  let p2, _ = Generator.build (tiny_spec ()) ~seed:2 in
  let weights p = Array.map (fun b -> b.Cfg.weight) p.Cfg.blocks in
  Alcotest.(check bool) "different weights" false (weights p1 = weights p2)

let test_generator_validate_errors () =
  let bad name spec =
    match Generator.validate spec with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: expected validation failure" name
  in
  bad "no loops" (tiny_spec ~loops:[] ());
  bad "zero procs" { (tiny_spec ()) with Generator.g_procs = 0 };
  bad "bad count" (tiny_spec ~loops:[ (0, Generator.loop ~branches:1 ()) ] ());
  bad "branches cap"
    (tiny_spec ~loops:[ (1, Generator.loop ~branches:17 ()) ] ());
  bad "bad bias" (tiny_spec ~loops:[ (1, Generator.loop ~bias:1.5 ~branches:1 ()) ] ());
  bad "bad loopback"
    (tiny_spec ~loops:[ (1, Generator.loop ~loopback:1.5 ~branches:1 ()) ] ());
  bad "bad fire period"
    (tiny_spec ~loops:[ (1, Generator.loop ~fire_period:1 ~branches:1 ()) ] ());
  bad "indirect fanout 1"
    (tiny_spec ~loops:[ (1, Generator.loop ~indirect:1 ~branches:1 ()) ] ());
  bad "bad phase steps" (tiny_spec ~phase_steps:(Some 0) ())

let test_generator_total_loops () =
  let spec =
    tiny_spec
      ~loops:[ (3, Generator.loop ~branches:1 ()); (2, Generator.micro_loop ()) ]
      ()
  in
  Alcotest.(check int) "total" 5 (Generator.total_loops spec)

let test_generator_runs_endlessly_until_fuel () =
  let program, behavior = Generator.build (tiny_spec ()) ~seed:7 in
  let vm = Vm.create program behavior ~rng:(Prng.create ~seed:9) in
  let stats = Vm.run ~max_steps:5_000 vm ~on_transfer:ignore in
  Alcotest.(check bool) "driver loop is endless" true (stats.Vm.reason = `Fuel)

let test_generator_micro_loop_periodicity () =
  (* A single micro loop with fire period k: its latch takes the back edge
     exactly every k-th execution. *)
  let spec =
    tiny_spec ~loops:[ (1, Generator.micro_loop ~fire_period:4 ()) ] ()
  in
  let program, behavior = Generator.build spec ~seed:3 in
  let vm = Vm.create program behavior ~rng:(Prng.create ~seed:3) in
  let backward_branches = ref 0 and total_branches = ref 0 in
  let _ =
    Vm.run ~max_steps:4_000 vm ~on_transfer:(fun tr ->
        match tr.Vm.kind with
        | Vm.T_branch _ when (Cfg.block program tr.Vm.src).Cfg.proc <> 0 ->
          incr total_branches;
          if tr.Vm.backward then incr backward_branches
        | _ -> ())
  in
  (* The pattern fires on every 4th latch execution regardless of visit
     boundaries: rate = 1/4 exactly (up to edge effects). *)
  let rate = float_of_int !backward_branches /. float_of_int !total_branches in
  Alcotest.(check bool)
    (Printf.sprintf "fire rate %.3f near 0.25" rate)
    true
    (abs_float (rate -. 0.25) < 0.02)

let test_generator_calls_and_indirects_present () =
  let spec =
    tiny_spec
      ~loops:[ (2, Generator.loop ~branches:2 ~calls:true ~indirect:4 ()) ]
      ()
  in
  let program, _ = Generator.build spec ~seed:5 in
  let has_indirect =
    Array.exists
      (fun b -> match b.Cfg.term with Cfg.Indirect _ -> true | _ -> false)
      program.Cfg.blocks
  and calls =
    Array.to_list program.Cfg.blocks
    |> List.filter_map (fun b ->
        match b.Cfg.term with Cfg.Call { callee; _ } -> Some callee | _ -> None)
  in
  Alcotest.(check bool) "indirect dispatch present" true has_indirect;
  (* Two loop-body helper calls plus the driver's worker call. *)
  Alcotest.(check int) "call sites" 3 (List.length calls)

let test_generator_phase_flip_changes_behavior () =
  (* One loop with phase-flipped diamonds; compare the dominant direction
     of its first diamond across the phase boundary. *)
  let spec =
    tiny_spec
      ~loops:[ (1, Generator.loop ~branches:1 ~bias:0.95 ~iterations:1000 ~phase_flip:true ()) ]
      ~phase_steps:(Some 5_000) ()
  in
  let program, behavior = Generator.build spec ~seed:11 in
  let vm = Vm.create program behavior ~rng:(Prng.create ~seed:13) in
  (* The diamond branch is the only non-latch conditional in worker procs
     with two successors differing from the head. Track taken-rate per
     phase via step counts. *)
  let taken_phase1 = ref 0 and n_phase1 = ref 0 in
  let taken_phase2 = ref 0 and n_phase2 = ref 0 in
  let steps = ref 0 in
  let diamond_src = ref None in
  let _ =
    Vm.run ~max_steps:20_000 vm ~on_transfer:(fun tr ->
        incr steps;
        match tr.Vm.kind with
        | Vm.T_branch { taken } when not tr.Vm.backward -> begin
            (* Identify the diamond branch: a forward conditional whose two
               targets differ (the latch's forward side exits the loop and
               is rare under iterations=1000). *)
            match !diamond_src with
            | None -> diamond_src := Some tr.Vm.src
            | Some src when src = tr.Vm.src ->
              if !steps < 5_000 then begin
                incr n_phase1;
                if taken then incr taken_phase1
              end
              else if !steps > 6_000 then begin
                incr n_phase2;
                if taken then incr taken_phase2
              end
            | Some _ -> ()
          end
        | _ -> ())
  in
  let rate1 = float_of_int !taken_phase1 /. float_of_int (max 1 !n_phase1)
  and rate2 = float_of_int !taken_phase2 /. float_of_int (max 1 !n_phase2) in
  Alcotest.(check bool)
    (Printf.sprintf "dominant direction flips (%.2f vs %.2f)" rate1 rate2)
    true
    (abs_float (rate1 -. rate2) > 0.5)

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let record_figure1 ?(config = Figure1.dominant) ?(max_paths = 2_000) ?(seed = 21) () =
  let program, behavior = Figure1.build ~config () in
  Recorder.record ~max_paths ~max_steps:200_000 program behavior
    ~rng:(Prng.create ~seed)

let test_figure1_signatures_match_paper () =
  let r = record_figure1 ~config:Figure1.flat () in
  let seen = Hashtbl.create 8 in
  Hotpath_trace.Path_table.iter
    (fun p ->
       if Path.head p = Figure1.block "A" && p.Path.end_kind = Path.Backward_transfer
       then Hashtbl.replace seen (Signature.to_string p.Path.signature) ())
    r.Recorder.table;
  List.iter
    (fun (path, _) ->
       let expected = Figure1.signature_of_blocks path in
       Alcotest.(check bool)
         (Printf.sprintf "%s (%s) observed" path expected)
         true (Hashtbl.mem seen expected))
    Figure1.paper_signatures

let test_figure1_dominant_config () =
  let r = record_figure1 ~config:Figure1.dominant () in
  let freq = Recorder.frequencies r in
  (* The hottest loop path must be ABDG. *)
  let best = ref (-1) and best_freq = ref 0 in
  Array.iteri
    (fun id f ->
       let p = Hotpath_trace.Path_table.path r.Recorder.table id in
       if Path.head p = Figure1.block "A" && f > !best_freq then begin
         best := id;
         best_freq := f
       end)
    freq;
  let hottest = Hotpath_trace.Path_table.path r.Recorder.table !best in
  Alcotest.(check string) "ABDG dominates"
    (Figure1.signature_of_blocks "ABDG")
    (Signature.to_string hottest.Path.signature)

let test_figure1_flat_config_spreads () =
  let r = record_figure1 ~config:Figure1.flat ~max_paths:5_000 () in
  let freq = Recorder.frequencies r in
  let loop_freqs =
    Array.to_list freq
    |> List.mapi (fun id f -> (id, f))
    |> List.filter (fun (id, _) ->
        let p = Hotpath_trace.Path_table.path r.Recorder.table id in
        Path.head p = Figure1.block "A" && p.Path.end_kind = Path.Backward_transfer)
    |> List.map snd
    |> List.sort compare
  in
  Alcotest.(check int) "five loop paths" 5 (List.length loop_freqs);
  (match (loop_freqs, List.rev loop_freqs) with
   | least :: _, most :: _ ->
     Alcotest.(check bool)
       (Printf.sprintf "spread within 4x (%d vs %d)" least most)
       true
       (most < 4 * max 1 least)
   | _ -> Alcotest.fail "unexpected")

let test_figure1_block_label_roundtrip () =
  List.iter
    (fun l -> Alcotest.(check string) "roundtrip" l (Figure1.label (Figure1.block l)))
    [ "A"; "B"; "J"; "K" ];
  Alcotest.check_raises "unknown label"
    (Invalid_argument "Figure1.block: unknown label Z") (fun () ->
      ignore (Figure1.block "Z"))

let test_figure1_program_valid () =
  let program, behavior = Figure1.build () in
  Alcotest.(check bool) "valid" true (Cfg.validate program = Ok ());
  Alcotest.(check bool) "behavior valid" true (Behavior.validate behavior = Ok ())

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let test_suite_inventory () =
  Alcotest.(check int) "nine benchmarks" 9 (List.length Suite.all);
  Alcotest.(check (list string)) "paper order"
    [ "compress"; "gcc"; "go"; "ijpeg"; "li"; "m88ksim"; "perl"; "vortex";
      "deltablue" ]
    Suite.names;
  Alcotest.(check int) "dynamo subset" 5 (List.length Suite.dynamo_set);
  Alcotest.(check (list string)) "dynamo members"
    [ "compress"; "li"; "m88ksim"; "perl"; "deltablue" ]
    (List.map (fun b -> b.Suite.b_name) Suite.dynamo_set)

let test_suite_find () =
  Alcotest.(check bool) "find compress" true (Suite.find "compress" <> None);
  Alcotest.(check bool) "find nothing" true (Suite.find "nope" = None);
  Alcotest.check_raises "find_exn"
    (Invalid_argument "Suite.find_exn: unknown benchmark nope") (fun () ->
      ignore (Suite.find_exn "nope"))

let test_suite_specs_valid () =
  List.iter
    (fun b ->
       match Generator.validate b.Suite.b_spec with
       | Ok () -> ()
       | Error e -> Alcotest.failf "%s: %s" b.Suite.b_name e)
    Suite.all

let test_suite_record_scales () =
  let b = Suite.find_exn "compress" in
  let r = Suite.record ~scale:0.01 b in
  Alcotest.(check int) "records the requested flow"
    (int_of_float (0.01 *. float_of_int b.Suite.b_flow))
    (Recorder.num_instances r)

let test_suite_record_minimum () =
  let b = Suite.find_exn "compress" in
  let r = Suite.record ~scale:0.000001 b in
  Alcotest.(check int) "minimum 1000 instances" 1000 (Recorder.num_instances r)

let test_suite_hot_threshold () =
  Alcotest.(check (float 1e-12)) "0.1%" 0.001 Suite.hot_threshold

let test_suite_record_deterministic () =
  let b = Suite.find_exn "deltablue" in
  let r1 = Suite.record ~scale:0.01 b and r2 = Suite.record ~scale:0.01 b in
  Alcotest.(check (array int)) "same instances" r1.Recorder.instances
    r2.Recorder.instances

let suites =
  [
    ( "workloads.generator",
      [
        Alcotest.test_case "valid program" `Quick test_generator_builds_valid_program;
        Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_generator_seed_sensitivity;
        Alcotest.test_case "validation errors" `Quick test_generator_validate_errors;
        Alcotest.test_case "total loops" `Quick test_generator_total_loops;
        Alcotest.test_case "endless driver" `Quick test_generator_runs_endlessly_until_fuel;
        Alcotest.test_case "micro-loop periodicity" `Quick
          test_generator_micro_loop_periodicity;
        Alcotest.test_case "calls and indirects" `Quick
          test_generator_calls_and_indirects_present;
        Alcotest.test_case "phase flip" `Quick test_generator_phase_flip_changes_behavior;
      ] );
    ( "workloads.figure1",
      [
        Alcotest.test_case "paper signatures" `Quick test_figure1_signatures_match_paper;
        Alcotest.test_case "dominant config" `Quick test_figure1_dominant_config;
        Alcotest.test_case "flat config" `Quick test_figure1_flat_config_spreads;
        Alcotest.test_case "block/label roundtrip" `Quick
          test_figure1_block_label_roundtrip;
        Alcotest.test_case "program valid" `Quick test_figure1_program_valid;
      ] );
    ( "workloads.suite",
      [
        Alcotest.test_case "inventory" `Quick test_suite_inventory;
        Alcotest.test_case "find" `Quick test_suite_find;
        Alcotest.test_case "specs valid" `Quick test_suite_specs_valid;
        Alcotest.test_case "record scales" `Quick test_suite_record_scales;
        Alcotest.test_case "record minimum" `Quick test_suite_record_minimum;
        Alcotest.test_case "hot threshold" `Quick test_suite_hot_threshold;
        Alcotest.test_case "record deterministic" `Quick test_suite_record_deterministic;
      ] );
  ]
