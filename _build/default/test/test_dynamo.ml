(* Tests for the Dynamo simulator: cost model, fragment cache, engine. *)

module Cfg = Hotpath_cfg.Cfg
module Path = Hotpath_trace.Path
module Recorder = Hotpath_trace.Recorder
module Scheme = Hotpath_prediction.Scheme
module Net = Hotpath_prediction.Net
module Path_profile = Hotpath_prediction.Path_profile
module Cost_model = Hotpath_dynamo.Cost_model
module Fragment_cache = Hotpath_dynamo.Fragment_cache
module Engine = Hotpath_dynamo.Engine
module Generator = Hotpath_workloads.Generator
module Prng = Hotpath_util.Prng

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_model_default_valid () =
  Alcotest.(check bool) "default valid" true (Cost_model.validate Cost_model.default = Ok ())

let test_cost_model_validation () =
  let bad name model =
    match Cost_model.validate model with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: expected validation error" name
  in
  bad "zero native"
    { Cost_model.default with Cost_model.native_cycles_per_instr = 0.0 };
  bad "interp not slower"
    { Cost_model.default with Cost_model.interp_cycles_per_instr = 0.5 };
  bad "fragment slower than interp"
    { Cost_model.default with Cost_model.fragment_cycles_per_instr = 99.0 }

(* ------------------------------------------------------------------ *)
(* Fragment cache                                                      *)
(* ------------------------------------------------------------------ *)

let mk_fragment ~path ~head ~blocks =
  {
    Fragment_cache.fr_path = path;
    fr_head = head;
    fr_blocks = blocks;
    fr_instrs = Array.length blocks;
  }

let test_cache_insert_find () =
  let c = Fragment_cache.create ~capacity:4 () in
  let f1 = mk_fragment ~path:1 ~head:10 ~blocks:[| 10; 11 |] in
  let f2 = mk_fragment ~path:2 ~head:10 ~blocks:[| 10; 12 |] in
  Alcotest.(check bool) "insert" true (Fragment_cache.insert c f1 = `Inserted);
  Alcotest.(check bool) "duplicate" true (Fragment_cache.insert c f1 = `Duplicate);
  Alcotest.(check bool) "second at same head" true
    (Fragment_cache.insert c f2 = `Inserted);
  Alcotest.(check int) "size" 2 (Fragment_cache.size c);
  Alcotest.(check bool) "find by path" true (Fragment_cache.find_path c 2 <> None);
  Alcotest.(check int) "both fragments at head" 2
    (List.length (Fragment_cache.find_head c 10));
  Alcotest.(check (list int)) "no fragment elsewhere" []
    (List.map (fun f -> f.Fragment_cache.fr_path) (Fragment_cache.find_head c 99))

let test_cache_capacity_and_flush () =
  let c = Fragment_cache.create ~capacity:2 () in
  ignore (Fragment_cache.insert c (mk_fragment ~path:1 ~head:1 ~blocks:[| 1 |]));
  ignore (Fragment_cache.insert c (mk_fragment ~path:2 ~head:2 ~blocks:[| 2 |]));
  Alcotest.(check bool) "full" true (Fragment_cache.is_full c);
  Alcotest.(check bool) "insert into full" true
    (Fragment_cache.insert c (mk_fragment ~path:3 ~head:3 ~blocks:[| 3 |]) = `Full);
  Fragment_cache.flush c;
  Alcotest.(check int) "flushed" 0 (Fragment_cache.size c);
  Alcotest.(check int) "flush count" 1 (Fragment_cache.flush_count c);
  Alcotest.(check int) "inserted total survives flush" 2
    (Fragment_cache.inserted_total c);
  Alcotest.(check bool) "reusable after flush" true
    (Fragment_cache.insert c (mk_fragment ~path:3 ~head:3 ~blocks:[| 3 |]) = `Inserted)

let test_cache_lru_eviction () =
  let c = Fragment_cache.create ~capacity:2 ~eviction:Fragment_cache.Evict_lru () in
  let f1 = mk_fragment ~path:1 ~head:1 ~blocks:[| 1 |] in
  let f2 = mk_fragment ~path:2 ~head:2 ~blocks:[| 2 |] in
  let f3 = mk_fragment ~path:3 ~head:3 ~blocks:[| 3 |] in
  ignore (Fragment_cache.insert c f1);
  ignore (Fragment_cache.insert c f2);
  (* Touch f1 so f2 is the LRU victim. *)
  ignore (Fragment_cache.find_path c 1);
  (match Fragment_cache.insert c f3 with
   | `Evicted victim ->
     Alcotest.(check int) "LRU victim is f2" 2 victim.Fragment_cache.fr_path
   | _ -> Alcotest.fail "expected eviction");
  Alcotest.(check bool) "f1 still resident" true (Fragment_cache.find_path c 1 <> None);
  Alcotest.(check bool) "f2 gone" true (Fragment_cache.find_path c 2 = None);
  Alcotest.(check bool) "f3 resident" true (Fragment_cache.find_path c 3 <> None);
  Alcotest.(check int) "eviction counted" 1 (Fragment_cache.evicted_total c);
  Alcotest.(check (list int)) "head list updated" []
    (List.map (fun f -> f.Fragment_cache.fr_path) (Fragment_cache.find_head c 2))

let test_cache_lru_under_engine () =
  (* Tight cache: LRU must not flush, and coverage must be at least the
     flush policy's. *)
  let b = Hotpath_workloads.Suite.find_exn "deltablue" in
  let r = Hotpath_workloads.Suite.record ~scale:0.3 b in
  let cost = Cost_model.default in
  let run eviction =
    Engine.run
      (Engine.config ~cost ~cache_capacity:48 ~cache_eviction:eviction
         ~scheme:(module Net : Scheme.S)
         ~scheme_costs:(Engine.net_costs cost) ~delay:50 ())
      r
  in
  let flushy = run Fragment_cache.Reject_when_full in
  let lru = run Fragment_cache.Evict_lru in
  Alcotest.(check int) "no flushes under LRU" 0 lru.Engine.r_flushes;
  Alcotest.(check bool) "flush policy flushes under pressure" true
    (flushy.Engine.r_flushes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "LRU coverage %.1f >= flush coverage %.1f"
       lru.Engine.r_cache_coverage_pct flushy.Engine.r_cache_coverage_pct)
    true
    (lru.Engine.r_cache_coverage_pct >= flushy.Engine.r_cache_coverage_pct -. 1.0)

let test_cache_policy_ablation_rows () =
  let rows =
    Hotpath_experiments.Ablations.cache_policies ~scale:0.3 ~bench:"deltablue"
      ~capacities:[ 32; 512 ] ()
  in
  Alcotest.(check int) "2 capacities x 2 policies" 4 (List.length rows)

let test_cache_invalid_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Fragment_cache.create: capacity must be >= 1") (fun () ->
      ignore (Fragment_cache.create ~capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let net_config ?cost ?flush_policy ?bail_policy ~delay () =
  let cost = Option.value ~default:Cost_model.default cost in
  Engine.config ~cost ?flush_policy ?bail_policy
    ~scheme:(module Net : Scheme.S)
    ~scheme_costs:(Engine.net_costs cost) ~delay ()

let pp_config ?cost ~delay () =
  let cost = Option.value ~default:Cost_model.default cost in
  Engine.config ~cost
    ~scheme:(module Path_profile : Scheme.S)
    ~scheme_costs:(Engine.path_profile_costs cost) ~delay ()

let record_loop ?(iterations = 2_000) () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations () in
  Recorder.record program behavior ~rng:(Prng.create ~seed:3)

let test_engine_native_cycles () =
  let r = record_loop ~iterations:100 () in
  let result = Engine.run (net_config ~delay:5 ()) r in
  (* Native cycles = total executed instructions (weights 2,3,5,1). *)
  let expected = float_of_int (2 + ((3 + 5) * 100) + 1) in
  Alcotest.(check (float 1e-6)) "native cycles" expected result.Engine.r_native_cycles

let test_engine_dominant_loop_speeds_up () =
  let r = record_loop ~iterations:5_000 () in
  let result = Engine.run (net_config ~delay:5 ()) r in
  Alcotest.(check bool)
    (Printf.sprintf "positive speedup (%.1f%%)" result.Engine.r_speedup_pct)
    true
    (result.Engine.r_speedup_pct > 10.0);
  Alcotest.(check bool) "high coverage" true (result.Engine.r_cache_coverage_pct > 95.0);
  Alcotest.(check bool) "no bail" true (not result.Engine.r_bailed);
  Alcotest.(check int) "no native tail" 0 result.Engine.r_native_tail

let test_engine_full_hits_dominate () =
  let r = record_loop ~iterations:5_000 () in
  let result = Engine.run (net_config ~delay:5 ()) r in
  Alcotest.(check bool) "full hits dominate" true
    (result.Engine.r_full_hits > 9 * result.Engine.r_misses)

let test_engine_cycle_breakdown_sums () =
  let r = record_loop ~iterations:500 () in
  let result = Engine.run (net_config ~delay:5 ()) r in
  let total =
    result.Engine.r_cycles_fragment +. result.Engine.r_cycles_interp
    +. result.Engine.r_cycles_profile +. result.Engine.r_cycles_overhead
    +. result.Engine.r_cycles_flush
  in
  Alcotest.(check (float 1e-6)) "breakdown sums to dynamo cycles" total
    result.Engine.r_dynamo_cycles

let test_engine_determinism () =
  let r = record_loop () in
  let r1 = Engine.run (net_config ~delay:10 ()) r in
  let r2 = Engine.run (net_config ~delay:10 ()) r in
  Alcotest.(check (float 1e-9)) "same cycles" r1.Engine.r_dynamo_cycles
    r2.Engine.r_dynamo_cycles

let test_engine_partial_hits () =
  (* Figure 1 flat: several paths share the head A; after the first
     prediction, divergent paths partially match its fragment. *)
  let program, behavior =
    Hotpath_workloads.Figure1.build ~config:Hotpath_workloads.Figure1.flat ()
  in
  let r =
    Recorder.record ~max_paths:5_000 ~max_steps:500_000 program behavior
      ~rng:(Prng.create ~seed:5)
  in
  let result = Engine.run (net_config ~delay:10 ()) r in
  Alcotest.(check bool) "partial hits occur" true (result.Engine.r_partial_hits > 0)

let test_engine_invalid_config () =
  Alcotest.check_raises "delay" (Invalid_argument "Engine.config: delay must be >= 1")
    (fun () -> ignore (net_config ~delay:0 ()));
  let bad_cost =
    { Cost_model.default with Cost_model.interp_cycles_per_instr = 0.1 }
  in
  (match net_config ~cost:bad_cost ~delay:5 () with
   | exception Invalid_argument _ -> ()
   | (_ : Engine.config) -> Alcotest.fail "expected invalid cost rejection")

(* A gcc-like workload: flat, wide, no dominant reuse — must bail out. *)
let test_engine_bails_on_flat_workload () =
  let spec =
    {
      Generator.g_name = "flatland";
      g_loops = [ (40, Generator.loop ~branches:10 ~bias:0.5 ~iterations:6 ()) ];
      g_procs = 4;
      g_phase_steps = None;
    }
  in
  let program, behavior = Generator.build spec ~seed:17 in
  let r =
    Recorder.record ~max_paths:120_000 ~max_steps:20_000_000 program behavior
      ~rng:(Prng.create ~seed:19)
  in
  let result = Engine.run (net_config ~delay:50 ()) r in
  Alcotest.(check bool) "bails out" true result.Engine.r_bailed;
  Alcotest.(check bool) "native tail follows" true (result.Engine.r_native_tail > 0)

(* A phased workload: the flush heuristic must fire at the phase change. *)
let phased_recording () =
  let spec =
    {
      Generator.g_name = "phased";
      g_loops =
        [ (6, Generator.loop ~branches:6 ~bias:0.97 ~iterations:200 ~phase_flip:true ()) ];
      g_procs = 1;
      g_phase_steps = Some 300_000;
    }
  in
  let program, behavior = Generator.build spec ~seed:23 in
  Recorder.record ~max_paths:120_000 ~max_steps:3_000_000 program behavior
    ~rng:(Prng.create ~seed:29)

let test_engine_flush_on_phase_change () =
  let r = phased_recording () in
  let with_flush =
    Engine.run
      (net_config
         ~flush_policy:(Some { Engine.fp_window = 2048; fp_factor = 2.0; fp_min = 8 })
         ~delay:20 ())
      r
  in
  Alcotest.(check bool)
    (Printf.sprintf "flushes at phase changes (%d)" with_flush.Engine.r_flushes)
    true
    (with_flush.Engine.r_flushes >= 1);
  let without =
    Engine.run (net_config ~flush_policy:None ~delay:20 ()) r
  in
  Alcotest.(check int) "no flushes without policy" 0 without.Engine.r_flushes

let test_engine_steady_workload_does_not_flush () =
  let r = record_loop ~iterations:5_000 () in
  let result = Engine.run (net_config ~delay:5 ()) r in
  Alcotest.(check int) "no flush on steady workload" 0 result.Engine.r_flushes

let test_engine_pp_vs_net_profiling_cost () =
  let r = record_loop ~iterations:2_000 () in
  let net = Engine.run (net_config ~delay:20 ()) r in
  let pp = Engine.run (pp_config ~delay:20 ()) r in
  Alcotest.(check bool) "path-profile pays more profiling cycles" true
    (pp.Engine.r_cycles_profile > net.Engine.r_cycles_profile)

(* ------------------------------------------------------------------ *)
(* Online driver                                                       *)
(* ------------------------------------------------------------------ *)

module Online = Hotpath_dynamo.Online

let test_online_equals_replay () =
  (* The strongest methodology check: feeding the VM's path stream through
     the stepper live produces exactly the same result as recording the
     trace and replaying it. *)
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.002 () in
  let config = net_config ~delay:10 () in
  let online =
    Online.run ~max_steps:80_000 ~config program behavior
      ~rng:(Prng.create ~seed:41)
  in
  let recorded =
    Recorder.record ~max_steps:80_000 program behavior ~rng:(Prng.create ~seed:41)
  in
  let replayed = Engine.run config recorded in
  let o = online.Online.o_result in
  Alcotest.(check int) "same instances" (Recorder.num_instances recorded)
    online.Online.o_instances;
  Alcotest.(check int) "same paths" (Recorder.num_paths recorded)
    online.Online.o_paths;
  Alcotest.(check (float 1e-9)) "same native cycles" replayed.Engine.r_native_cycles
    o.Engine.r_native_cycles;
  Alcotest.(check (float 1e-9)) "same dynamo cycles" replayed.Engine.r_dynamo_cycles
    o.Engine.r_dynamo_cycles;
  Alcotest.(check int) "same full hits" replayed.Engine.r_full_hits o.Engine.r_full_hits;
  Alcotest.(check int) "same partials" replayed.Engine.r_partial_hits
    o.Engine.r_partial_hits;
  Alcotest.(check int) "same fragments" replayed.Engine.r_fragments o.Engine.r_fragments;
  Alcotest.(check int) "same flushes" replayed.Engine.r_flushes o.Engine.r_flushes

let test_online_equals_replay_on_benchmark () =
  let b = Hotpath_workloads.Suite.find_exn "deltablue" in
  let program, behavior =
    Generator.build b.Hotpath_workloads.Suite.b_spec
      ~seed:b.Hotpath_workloads.Suite.b_seed
  in
  let config = net_config ~delay:50 () in
  let seed = b.Hotpath_workloads.Suite.b_seed * 7919 in
  let online =
    Online.run ~max_paths:15_000 ~max_steps:3_000_000 ~config program behavior
      ~rng:(Prng.create ~seed)
  in
  let recorded =
    Recorder.record ~max_paths:15_000 ~max_steps:3_000_000 program behavior
      ~rng:(Prng.create ~seed)
  in
  let replayed = Engine.run config recorded in
  Alcotest.(check (float 1e-9)) "identical speedup"
    replayed.Engine.r_speedup_pct online.Online.o_result.Engine.r_speedup_pct

let test_online_respects_limits () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:1_000_000 () in
  let config = net_config ~delay:5 () in
  let o =
    Online.run ~max_paths:500 ~config program behavior ~rng:(Prng.create ~seed:1)
  in
  Alcotest.(check int) "stops at max paths" 500 o.Online.o_instances

let suites =
  [
    ( "dynamo.cost_model",
      [
        Alcotest.test_case "default valid" `Quick test_cost_model_default_valid;
        Alcotest.test_case "validation" `Quick test_cost_model_validation;
      ] );
    ( "dynamo.fragment_cache",
      [
        Alcotest.test_case "insert/find" `Quick test_cache_insert_find;
        Alcotest.test_case "capacity/flush" `Quick test_cache_capacity_and_flush;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "LRU under engine" `Quick test_cache_lru_under_engine;
        Alcotest.test_case "policy ablation rows" `Quick test_cache_policy_ablation_rows;
        Alcotest.test_case "invalid capacity" `Quick test_cache_invalid_capacity;
      ] );
    ( "dynamo.engine",
      [
        Alcotest.test_case "native cycles" `Quick test_engine_native_cycles;
        Alcotest.test_case "dominant loop speedup" `Quick
          test_engine_dominant_loop_speeds_up;
        Alcotest.test_case "full hits dominate" `Quick test_engine_full_hits_dominate;
        Alcotest.test_case "breakdown sums" `Quick test_engine_cycle_breakdown_sums;
        Alcotest.test_case "determinism" `Quick test_engine_determinism;
        Alcotest.test_case "partial hits" `Quick test_engine_partial_hits;
        Alcotest.test_case "invalid config" `Quick test_engine_invalid_config;
        Alcotest.test_case "bails on flat workload" `Slow
          test_engine_bails_on_flat_workload;
        Alcotest.test_case "flush on phase change" `Slow test_engine_flush_on_phase_change;
        Alcotest.test_case "steady workload: no flush" `Quick
          test_engine_steady_workload_does_not_flush;
        Alcotest.test_case "pp pays more profiling" `Quick
          test_engine_pp_vs_net_profiling_cost;
      ] );
    ( "dynamo.online",
      [
        Alcotest.test_case "online = record+replay" `Quick test_online_equals_replay;
        Alcotest.test_case "online = replay on benchmark" `Quick
          test_online_equals_replay_on_benchmark;
        Alcotest.test_case "respects limits" `Quick test_online_respects_limits;
      ] );
  ]
