(* Tests for the virtual CFG ISA: builder, validation, address geometry. *)

module Cfg = Hotpath_cfg.Cfg

let build_two_block_loop () =
  let b = Cfg.Builder.create ~name:"t" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Jump b1);
  Cfg.Builder.set_term b b1 (Cfg.Branch { taken = b0; fallthrough = b2 });
  Cfg.Builder.set_term b b2 Cfg.Exit;
  (Cfg.Builder.finish b, b0, b1, b2)

let test_builder_basic () =
  let program, b0, b1, b2 = build_two_block_loop () in
  Alcotest.(check int) "blocks" 3 (Array.length program.Cfg.blocks);
  Alcotest.(check int) "procs" 1 (Array.length program.Cfg.procs);
  Alcotest.(check int) "entry" b0 (Cfg.entry_block program);
  Alcotest.(check int) "addr = id" b1 (Cfg.addr program b1);
  Alcotest.(check int) "weight" 1 (Cfg.block program b2).Cfg.weight

let test_is_backward () =
  let program, b0, b1, b2 = build_two_block_loop () in
  Alcotest.(check bool) "back edge" true (Cfg.is_backward program ~src:b1 ~dst:b0);
  Alcotest.(check bool) "self edge is backward" true
    (Cfg.is_backward program ~src:b1 ~dst:b1);
  Alcotest.(check bool) "forward" false (Cfg.is_backward program ~src:b0 ~dst:b2)

let test_successors () =
  let program, b0, b1, b2 = build_two_block_loop () in
  Alcotest.(check (list int)) "jump" [ b1 ] (Cfg.successors program b0);
  Alcotest.(check (list int)) "branch" [ b0; b2 ] (Cfg.successors program b1);
  Alcotest.(check (list int)) "exit" [] (Cfg.successors program b2)

let test_counts () =
  let program, _, _, _ = build_two_block_loop () in
  Alcotest.(check int) "branch count" 1 (Cfg.branch_count program);
  Alcotest.(check int) "backward targets" 1 (Cfg.backward_branch_target_count program)

let test_out_of_range_accessors () =
  let program, _, _, _ = build_two_block_loop () in
  Alcotest.check_raises "block" (Invalid_argument "Cfg.block: id 99 out of range")
    (fun () -> ignore (Cfg.block program 99));
  Alcotest.check_raises "proc" (Invalid_argument "Cfg.proc: id 5 out of range") (fun () ->
      ignore (Cfg.proc program 5))

let expect_invalid name make =
  Alcotest.test_case name `Quick (fun () ->
      match make () with
      | exception Invalid_argument _ -> ()
      | (_ : Cfg.program) -> Alcotest.fail "expected validation failure")

let invalid_cross_proc_branch () =
  let b = Cfg.Builder.create ~name:"bad" in
  let p0 = Cfg.Builder.add_proc b ~name:"main" in
  let p1 = Cfg.Builder.add_proc b ~name:"other" in
  let b0 = Cfg.Builder.add_block b ~proc:p0 ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p1 ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Jump b1);
  Cfg.Builder.set_term b b1 Cfg.Return;
  Cfg.Builder.finish b

let invalid_empty_indirect () =
  let b = Cfg.Builder.create ~name:"bad" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Indirect [||]);
  Cfg.Builder.finish b

let invalid_target_out_of_range () =
  let b = Cfg.Builder.create ~name:"bad" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Jump 42);
  Cfg.Builder.finish b

let invalid_bad_callee () =
  let b = Cfg.Builder.create ~name:"bad" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  let b1 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Call { callee = 9; return_to = b1 });
  Cfg.Builder.set_term b b1 Cfg.Exit;
  Cfg.Builder.finish b

let invalid_empty_proc () =
  let b = Cfg.Builder.create ~name:"bad" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let _ = Cfg.Builder.add_proc b ~name:"empty" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:1 in
  Cfg.Builder.set_term b b0 Cfg.Exit;
  Cfg.Builder.finish b

let invalid_zero_weight () =
  let b = Cfg.Builder.create ~name:"bad" in
  let p = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:p ~weight:0 in
  Cfg.Builder.set_term b b0 Cfg.Exit;
  Cfg.Builder.finish b

let test_validate_ok () =
  let program, _, _, _ = build_two_block_loop () in
  match Cfg.validate program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected validation error: %s" e

let test_dot_export () =
  let program, _, _, _ = build_two_block_loop () in
  let dot = Cfg.to_dot program in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec scan i = i + n <= h && (String.sub dot i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph");
  Alcotest.(check bool) "cluster" true (contains "cluster_p0");
  Alcotest.(check bool) "backward edge styled" true (contains "style=bold")

let test_pp_roundtrip_smoke () =
  let program, _, _, _ = build_two_block_loop () in
  let s = Format.asprintf "%a" Cfg.pp_program program in
  Alcotest.(check bool) "prints something" true (String.length s > 20)

let test_fixture_programs_valid () =
  let check name program =
    match Cfg.validate program with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s invalid: %s" name e
  in
  let p1, _, _ = Fixtures.simple_loop () in
  let p2, _, _ = Fixtures.call_loop () in
  let p3, _, _ = Fixtures.recursive () in
  let p4, _, _ = Fixtures.indirect_loop () in
  check "simple_loop" p1;
  check "call_loop" p2;
  check "recursive" p3;
  check "indirect_loop" p4

let suites =
  [
    ( "cfg",
      [
        Alcotest.test_case "builder basics" `Quick test_builder_basic;
        Alcotest.test_case "is_backward" `Quick test_is_backward;
        Alcotest.test_case "successors" `Quick test_successors;
        Alcotest.test_case "counts" `Quick test_counts;
        Alcotest.test_case "out-of-range accessors" `Quick test_out_of_range_accessors;
        Alcotest.test_case "validate ok" `Quick test_validate_ok;
        expect_invalid "reject cross-proc branch" invalid_cross_proc_branch;
        expect_invalid "reject empty indirect" invalid_empty_indirect;
        expect_invalid "reject out-of-range target" invalid_target_out_of_range;
        expect_invalid "reject bad callee" invalid_bad_callee;
        expect_invalid "reject empty procedure" invalid_empty_proc;
        expect_invalid "reject zero weight" invalid_zero_weight;
        Alcotest.test_case "dot export" `Quick test_dot_export;
        Alcotest.test_case "pp smoke" `Quick test_pp_roundtrip_smoke;
        Alcotest.test_case "fixtures valid" `Quick test_fixture_programs_valid;
      ] );
  ]
