(* Direct tests for the streaming path segmenter (shared by the recorder
   and the live Dynamo driver), plus coverage for the VM's remaining
   behaviour models. *)

module Cfg = Hotpath_cfg.Cfg
module Vm = Hotpath_vm.Vm
module Behavior = Hotpath_vm.Behavior
module Segmenter = Hotpath_trace.Segmenter
module Signature = Hotpath_trace.Signature
module Path = Hotpath_trace.Path
module Prng = Hotpath_util.Prng

let drive program behavior ~seed ~max_steps =
  let vm = Vm.create program behavior ~rng:(Prng.create ~seed) in
  let seg = Segmenter.create program in
  let completed = ref [] in
  let _ =
    Vm.run ~max_steps vm ~on_transfer:(fun tr ->
        match Segmenter.feed seg tr with
        | Some c -> completed := c :: !completed
        | None -> ())
  in
  (List.rev !completed, seg)

let test_simple_loop_stream () =
  let program, behavior, (b0, b1, b2, b3) = Fixtures.simple_loop ~iterations:3 () in
  let completed, _ = drive program behavior ~seed:1 ~max_steps:1000 in
  Alcotest.(check int) "three paths" 3 (List.length completed);
  (match completed with
   | [ p1; p2; p3 ] ->
     Alcotest.(check (array int)) "entry" [| b0; b1; b2 |] p1.Segmenter.c_blocks;
     Alcotest.(check bool) "entry arrival" true (p1.Segmenter.c_arrival = Path.Entry);
     Alcotest.(check (array int)) "loop" [| b1; b2 |] p2.Segmenter.c_blocks;
     Alcotest.(check bool) "loop-head arrival" true
       (p2.Segmenter.c_arrival = Path.Loop_head);
     Alcotest.(check (array int)) "exit" [| b1; b2; b3 |] p3.Segmenter.c_blocks;
     Alcotest.(check bool) "program end" true
       (p3.Segmenter.c_end_kind = Path.Program_end)
   | _ -> Alcotest.fail "unexpected stream")

let test_instrs_and_branches_consistent () =
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.05 () in
  let completed, _ = drive program behavior ~seed:5 ~max_steps:5_000 in
  List.iter
    (fun c ->
       let weight_sum =
         Array.fold_left
           (fun acc b -> acc + (Cfg.block program b).Cfg.weight)
           0 c.Segmenter.c_blocks
       in
       Alcotest.(check int) "instrs = block weights" weight_sum
         c.Segmenter.c_n_instrs;
       Alcotest.(check int) "branches = signature length"
         (Signature.length c.Segmenter.c_signature)
         c.Segmenter.c_n_branches)
    completed

let test_in_flight_blocks () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:1_000 () in
  let vm = Vm.create program behavior ~rng:(Prng.create ~seed:1) in
  let seg = Segmenter.create program in
  Alcotest.(check int) "starts with the entry block" 1
    (Segmenter.in_flight_blocks seg);
  (match Vm.step vm with
   | Some tr -> ignore (Segmenter.feed seg tr)
   | None -> Alcotest.fail "vm ended early");
  Alcotest.(check int) "grew" 2 (Segmenter.in_flight_blocks seg)

let test_feed_after_exit_rejected () =
  let program, behavior, _ = Fixtures.simple_loop ~iterations:2 () in
  let vm = Vm.create program behavior ~rng:(Prng.create ~seed:1) in
  let seg = Segmenter.create program in
  let last_transfer = ref None in
  let _ =
    Vm.run vm ~on_transfer:(fun tr ->
        last_transfer := Some tr;
        ignore (Segmenter.feed seg tr))
  in
  match !last_transfer with
  | None -> Alcotest.fail "no transfers"
  | Some tr ->
    Alcotest.check_raises "feed after exit"
      (Invalid_argument "Segmenter.feed: program already exited") (fun () ->
        ignore (Segmenter.feed seg tr))

let test_crossed_return_target_in_signature () =
  (* Same shape as the recorder test: the path crossing the unmatched
     forward return carries the return target as an indirect entry. *)
  let b = Cfg.Builder.create ~name:"callee_loop" in
  let main = Cfg.Builder.add_proc b ~name:"main" in
  let b0 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  let helper = Cfg.Builder.add_proc b ~name:"helper" in
  let b1 = Cfg.Builder.add_block b ~proc:helper ~weight:1 in
  let b2 = Cfg.Builder.add_block b ~proc:helper ~weight:1 in
  let b3 = Cfg.Builder.add_block b ~proc:helper ~weight:1 in
  let b4 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  let b5 = Cfg.Builder.add_block b ~proc:main ~weight:1 in
  Cfg.Builder.set_term b b0 (Cfg.Call { callee = helper; return_to = b4 });
  Cfg.Builder.set_term b b1 (Cfg.Jump b2);
  Cfg.Builder.set_term b b2 (Cfg.Branch { taken = b1; fallthrough = b3 });
  Cfg.Builder.set_term b b3 Cfg.Return;
  Cfg.Builder.set_term b b4 (Cfg.Jump b5);
  Cfg.Builder.set_term b b5 Cfg.Exit;
  let program = Cfg.Builder.finish b in
  let behavior = Behavior.create program () in
  Behavior.set_branch behavior b2 (Behavior.Periodic [| true; false |]);
  let completed, _ = drive program behavior ~seed:1 ~max_steps:1_000 in
  let last = List.nth completed (List.length completed - 1) in
  Alcotest.(check (array int)) "crosses the return" [| b1; b2; b3; b4; b5 |]
    last.Segmenter.c_blocks;
  Alcotest.(check (list int)) "return target recorded as indirect" [ b4 ]
    (Signature.indirect_targets last.Segmenter.c_signature)

(* ------------------------------------------------------------------ *)
(* Remaining VM behaviour models                                       *)
(* ------------------------------------------------------------------ *)

let test_phased_indirect_target () =
  (* Indirect dispatch favouring target 0 before step 200, target 1 after. *)
  let program, behavior, (_, _, b2, b3, b4, _, _) =
    Fixtures.indirect_loop ~exit_prob:0.001 ()
  in
  Behavior.set_indirect behavior b2
    (Behavior.Phased_target
       [| (200, [| 1.0; 0.0 |]); (max_int, [| 0.0; 1.0 |]) |]);
  let vm = Vm.create program behavior ~rng:(Prng.create ~seed:9) in
  let early = ref [] and late = ref [] in
  let steps = ref 0 in
  let _ =
    Vm.run ~max_steps:2_000 vm ~on_transfer:(fun tr ->
        incr steps;
        if tr.Vm.kind = Vm.T_indirect then
          if !steps < 200 then early := tr.Vm.dst :: !early
          else if !steps > 220 then late := tr.Vm.dst :: !late)
  in
  Alcotest.(check bool) "early phase hits target 0" true
    (List.for_all (fun d -> d = Some b3) !early && !early <> []);
  Alcotest.(check bool) "late phase hits target 1" true
    (List.for_all (fun d -> d = Some b4) !late && !late <> [])

let test_always_false_branch () =
  let program, behavior, (_, _, b2, _) = Fixtures.simple_loop () in
  Behavior.set_branch behavior b2 (Behavior.Always false);
  let vm = Vm.create program behavior ~rng:(Prng.create ~seed:1) in
  let stats = Vm.run ~max_steps:100 vm ~on_transfer:ignore in
  (* Loop never taken: b0 b1 b2 b3 = 4 blocks. *)
  Alcotest.(check int) "immediate exit" 4 stats.Vm.blocks

let suites =
  [
    ( "trace.segmenter",
      [
        Alcotest.test_case "simple loop stream" `Quick test_simple_loop_stream;
        Alcotest.test_case "instrs/branches consistent" `Quick
          test_instrs_and_branches_consistent;
        Alcotest.test_case "in-flight blocks" `Quick test_in_flight_blocks;
        Alcotest.test_case "feed after exit" `Quick test_feed_after_exit_rejected;
        Alcotest.test_case "crossed return in signature" `Quick
          test_crossed_return_target_in_signature;
      ] );
    ( "vm.models",
      [
        Alcotest.test_case "phased indirect target" `Quick test_phased_indirect_target;
        Alcotest.test_case "always-false branch" `Quick test_always_false_branch;
      ] );
  ]
