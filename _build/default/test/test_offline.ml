(* Tests for edge profiling, the edge-vs-path showdown, and the sampling
   profiler. *)

module Recorder = Hotpath_trace.Recorder
module Path_table = Hotpath_trace.Path_table
module Path = Hotpath_trace.Path
module Edge_profile = Hotpath_profiling.Edge_profile
module Sampling = Hotpath_profiling.Sampling
module Hot_set = Hotpath_metrics.Hot_set
module Offline = Hotpath_experiments.Offline
module Prng = Hotpath_util.Prng

let record_simple ?(iterations = 100) () =
  let program, behavior, ids = Fixtures.simple_loop ~iterations () in
  (Recorder.record program behavior ~rng:(Prng.create ~seed:2), ids)

(* ------------------------------------------------------------------ *)
(* Edge profile                                                        *)
(* ------------------------------------------------------------------ *)

let test_edge_counts_simple_loop () =
  let r, (b0, b1, b2, b3) = record_simple ~iterations:100 () in
  let t = Edge_profile.collect r in
  (* b0->b1 once; b1->b2 100 times; b2->b1 (back edge) 99; b2->b3 once. *)
  Alcotest.(check int) "entry edge" 1 (Edge_profile.count t ~src:b0 ~dst:b1);
  Alcotest.(check int) "body edge" 100 (Edge_profile.count t ~src:b1 ~dst:b2);
  Alcotest.(check int) "back edge" 99 (Edge_profile.count t ~src:b2 ~dst:b1);
  Alcotest.(check int) "exit edge" 1 (Edge_profile.count t ~src:b2 ~dst:b3);
  Alcotest.(check int) "unknown edge" 0 (Edge_profile.count t ~src:b3 ~dst:b0);
  Alcotest.(check int) "counter space" 4 (Edge_profile.counter_space t)

let test_edge_list_descending () =
  let r, _ = record_simple () in
  let t = Edge_profile.collect r in
  let counts = List.map snd (Edge_profile.edges t) in
  Alcotest.(check (list int)) "descending" (List.sort (fun a b -> compare b a) counts)
    counts

let test_path_bound_upper_bounds_freq () =
  let r, _ = record_simple ~iterations:200 () in
  let t = Edge_profile.collect r in
  let freq = Recorder.frequencies r in
  Path_table.iter
    (fun p ->
       let bound = Edge_profile.path_bound t p ~next_head:None in
       Alcotest.(check bool)
         (Printf.sprintf "path %d: bound %d >= freq %d" p.Path.id bound
            freq.(p.Path.id))
         true
         (bound >= freq.(p.Path.id)))
    r.Recorder.table

let test_estimate_recovers_dominant_path () =
  let r, (_, b1, _, _) = record_simple ~iterations:500 () in
  match Edge_profile.estimate_hot_paths r ~k:1 with
  | [ e ] ->
    Alcotest.(check int) "hottest estimated path is the loop body" b1
      (Path.head e.Edge_profile.est_path);
    Alcotest.(check bool) "with a high true frequency" true
      (e.Edge_profile.est_true_freq > 400)
  | other -> Alcotest.failf "expected one estimate, got %d" (List.length other)

let test_showdown_perfect_on_single_loop () =
  let r, _ = record_simple ~iterations:1000 () in
  let hot =
    Hot_set.compute ~freq:(Recorder.frequencies r)
      ~total_flow:(Recorder.num_instances r) ~threshold:0.01
  in
  let identified, hot_size, flow_pct = Edge_profile.showdown_stats r ~hot in
  Alcotest.(check int) "identified all" hot_size identified;
  Alcotest.(check bool) "full hot flow" true (flow_pct > 99.0)

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)
(* ------------------------------------------------------------------ *)

let test_sampling_period_one_is_exact () =
  let r, _ = record_simple () in
  let t = Sampling.profile r ~period:1 in
  Alcotest.(check int) "all sampled" (Recorder.num_instances r) (Sampling.samples t);
  Alcotest.(check (array int)) "exact frequencies" (Recorder.frequencies r)
    (Sampling.estimated_freq t)

let test_sampling_counts_every_nth () =
  let r, _ = record_simple ~iterations:100 () in
  let t = Sampling.profile r ~period:10 in
  Alcotest.(check int) "100 instances at iterations=100" 100
    (Recorder.num_instances r);
  (* ceil(100/10) = 10 samples. *)
  Alcotest.(check int) "sample count" 10 (Sampling.samples t);
  let est_total = Array.fold_left ( + ) 0 (Sampling.estimated_freq t) in
  Alcotest.(check int) "scaled total" 100 est_total

let test_sampling_invalid_period () =
  let r, _ = record_simple () in
  Alcotest.check_raises "period 0"
    (Invalid_argument "Sampling.profile: period must be >= 1") (fun () ->
      ignore (Sampling.profile r ~period:0))

let test_sampling_accuracy_perfect_at_period_one () =
  let r, _ = record_simple ~iterations:1000 () in
  let hot =
    Hot_set.compute ~freq:(Recorder.frequencies r)
      ~total_flow:(Recorder.num_instances r) ~threshold:0.01
  in
  let acc = Sampling.accuracy r ~hot ~period:1 in
  Alcotest.(check (float 1e-9)) "precision 1" 1.0 acc.Sampling.acc_precision;
  Alcotest.(check (float 1e-9)) "recall 1" 1.0 acc.Sampling.acc_recall

let test_sampling_counter_space_shrinks () =
  let program, behavior, _ = Fixtures.indirect_loop ~exit_prob:0.01 () in
  let r = Recorder.record ~max_steps:30_000 program behavior ~rng:(Prng.create ~seed:5) in
  let space p = Sampling.counter_space (Sampling.profile r ~period:p) in
  Alcotest.(check bool) "fewer counters at longer periods" true
    (space 100 <= space 10 && space 10 <= space 1)

(* ------------------------------------------------------------------ *)
(* Offline experiment drivers                                          *)
(* ------------------------------------------------------------------ *)

let test_offline_showdown_rows () =
  let rows = Offline.showdown ~scale:0.05 () in
  Alcotest.(check int) "9 + correlated" 10 (List.length rows);
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: identified (%d) <= hot (%d)" r.Offline.s_bench
            r.Offline.s_identified r.Offline.s_hot)
         true
         (r.Offline.s_identified <= r.Offline.s_hot && r.Offline.s_flow_pct <= 100.0))
    rows

let test_offline_showdown_recovers_majority () =
  (* The Ball-Mataga-Sagiv claim: edge profiles recover a large share of
     the hot path profile.  Check the dominant benchmarks. *)
  let rows = Offline.showdown ~scale:0.1 () in
  List.iter
    (fun name ->
       let r = List.find (fun r -> r.Offline.s_bench = name) rows in
       Alcotest.(check bool)
         (Printf.sprintf "%s recovers %.1f%% hot flow" name r.Offline.s_flow_pct)
         true
         (r.Offline.s_flow_pct > 60.0))
    [ "compress"; "li"; "m88ksim"; "perl"; "deltablue" ]

let test_offline_sampling_monotone_recall () =
  let rows = Offline.sampling ~scale:0.1 ~periods:[ 1; 50 ] () in
  List.iter
    (fun name ->
       let get period =
         List.find
           (fun r -> r.Offline.p_bench = name && r.Offline.p_period = period)
           rows
       in
       Alcotest.(check bool)
         (name ^ ": denser sampling at least as accurate")
         true
         ((get 1).Offline.p_recall >= (get 50).Offline.p_recall -. 0.01))
    Hotpath_workloads.Suite.names

let suites =
  [
    ( "offline.edge_profile",
      [
        Alcotest.test_case "simple-loop counts" `Quick test_edge_counts_simple_loop;
        Alcotest.test_case "edges descending" `Quick test_edge_list_descending;
        Alcotest.test_case "bound upper-bounds freq" `Quick
          test_path_bound_upper_bounds_freq;
        Alcotest.test_case "estimates dominant path" `Quick
          test_estimate_recovers_dominant_path;
        Alcotest.test_case "showdown on single loop" `Quick
          test_showdown_perfect_on_single_loop;
      ] );
    ( "offline.sampling",
      [
        Alcotest.test_case "period 1 exact" `Quick test_sampling_period_one_is_exact;
        Alcotest.test_case "every nth" `Quick test_sampling_counts_every_nth;
        Alcotest.test_case "invalid period" `Quick test_sampling_invalid_period;
        Alcotest.test_case "perfect at period 1" `Quick
          test_sampling_accuracy_perfect_at_period_one;
        Alcotest.test_case "counter space shrinks" `Quick
          test_sampling_counter_space_shrinks;
      ] );
    ( "offline.experiments",
      [
        Alcotest.test_case "showdown rows" `Quick test_offline_showdown_rows;
        Alcotest.test_case "showdown recovers majority" `Quick
          test_offline_showdown_recovers_majority;
        Alcotest.test_case "sampling monotone recall" `Quick
          test_offline_sampling_monotone_recall;
      ] );
  ]
