(* Command-line interface: regenerate every table and figure of the paper,
   inspect workloads, record/replay traces, and run individual experiments. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let scale_arg =
  let doc =
    "Flow scale: fraction of each benchmark's calibrated path-instance \
     budget to record (1.0 = full)."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let jobs_arg =
  let doc =
    "Fan experiment jobs over N work-pool domains (capped at the \
     machine's recommended domain count).  Output is identical at every \
     job count."
  in
  let pos_int =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n when n >= 1 -> Ok n
      | Ok n -> Error (`Msg (Printf.sprintf "jobs must be >= 1, got %d" n))
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(
    value
    & opt pos_int (Hotpath_util.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let lane_jobs_arg =
  let doc =
    "Parallelize the sweep's trace walk over N domains (clamped to the \
     machine's domain budget; the stream is sharded into chunks, not the \
     delay lanes).  Points and emitted events are byte-identical at every \
     job count."
  in
  let pos_int =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n when n >= 1 -> Ok n
      | Ok n -> Error (`Msg (Printf.sprintf "jobs must be >= 1, got %d" n))
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(value & opt pos_int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "Emit CSV instead of an aligned text table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let zoom_arg =
  let doc = "Restrict to the practically relevant region (<= 10% profiled flow)." in
  Arg.(value & flag & info [ "zoom" ] ~doc)

let bench_arg =
  let doc = "Benchmark name (see bench-list)." in
  Arg.(required & opt (some string) None & info [ "bench"; "b" ] ~docv:"NAME" ~doc)

let delay_arg =
  let doc = "Prediction delay (tau)." in
  Arg.(value & opt int 50 & info [ "delay"; "d" ] ~docv:"N" ~doc)

let scheme_arg =
  let doc =
    "Prediction scheme: net | net-once | let | path-profile | static | \
     net-k<k> | path-profile-k<k> (k-iteration families, 1 <= k <= 32) | \
     net-kauto | path-profile-kauto (statically-selected per-head k)."
  in
  (* Validated at parse time (a bad name is a usage error, not an
     uncaught exception), but carried as the string: serve-send ships
     the name over the wire and the others re-resolve it memoized. *)
  let scheme_conv =
    Arg.conv
      ( (fun s ->
          match Hotpath_prediction.Schemes.of_name s with
          | Ok _ -> Ok s
          | Error msg -> Error (`Msg msg)),
        Format.pp_print_string )
  in
  Arg.(value & opt scheme_conv "net" & info [ "scheme"; "s" ] ~docv:"NAME" ~doc)

let emit ~csv tbl =
  print_string
    (if csv then Hotpath_util.Tablefmt.render_csv tbl
     else Hotpath_util.Tablefmt.render tbl)

let events_arg =
  let doc =
    "Write a structured JSON-Lines event stream to $(docv) (per-window \
     replay samples, sweep progress, Dynamo flush/bail incidents; see the \
     README's Observability section).  Emission never changes computed \
     results."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)

let events_window_arg =
  let doc = "Event sample window, in path instances." in
  Arg.(
    value
    & opt int Hotpath_prediction.Replay.default_events_window
    & info [ "events-window" ] ~docv:"N" ~doc)

(* [--events FILE] opens a sink around [f]; no flag means the null sink,
   which every producer treats as "disabled". *)
let with_events_sink events f =
  match events with
  | None -> f Hotpath_util.Events.null
  | Some path ->
    let sink = Hotpath_util.Events.open_file path in
    Fun.protect
      ~finally:(fun () -> Hotpath_util.Events.close sink)
      (fun () -> f sink)

let scheme_of_string name =
  match Hotpath_prediction.Schemes.of_name name with
  | Ok m -> m
  | Error msg -> raise (Invalid_argument msg)

(* ------------------------------------------------------------------ *)
(* Tables and figures                                                  *)
(* ------------------------------------------------------------------ *)

let table1_cmd =
  let run scale csv =
    emit ~csv (Hotpath_experiments.Table1.to_table (Hotpath_experiments.Table1.compute ~scale ()))
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Benchmark set: paths, flow, 0.1% hot set")
    Term.(const run $ scale_arg $ csv_arg)

let table2_cmd =
  let run scale csv =
    emit ~csv (Hotpath_experiments.Table2.to_table (Hotpath_experiments.Table2.compute ~scale ()))
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Paths vs unique path heads")
    Term.(const run $ scale_arg $ csv_arg)

let fig_cmd ~name ~doc ~hit =
  let run scale zoom csv jobs =
    let t, stats = Hotpath_experiments.Figures23.compute_timed ~scale ~jobs () in
    emit ~csv (Hotpath_experiments.Figures23.to_table t ~hit ~zoom);
    if not csv then begin
      print_newline ();
      Format.printf "%a@." Hotpath_experiments.Figures23.pp_sweep_stats stats;
      print_endline "Summary (average series):";
      List.iter
        (fun su ->
           let show = function Some v -> Printf.sprintf "%.1f%%" v | None -> "n/a" in
           Printf.printf
             "  %-13s hit@10%%flow=%s (%d benchmarks) noise@10%%flow=%s (%d) \
              hit@tau50=%.1f%% noise@tau50=%.1f%%\n"
             su.Hotpath_experiments.Figures23.su_scheme
             (show su.Hotpath_experiments.Figures23.su_hit_at_10pct)
             su.Hotpath_experiments.Figures23.su_hit_at_10pct_n
             (show su.Hotpath_experiments.Figures23.su_noise_at_10pct)
             su.Hotpath_experiments.Figures23.su_noise_at_10pct_n
             su.Hotpath_experiments.Figures23.su_hit_at_delay50
             su.Hotpath_experiments.Figures23.su_noise_at_delay50)
        (Hotpath_experiments.Figures23.summarize t)
    end
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ scale_arg $ zoom_arg $ csv_arg $ jobs_arg)

let fig2_cmd = fig_cmd ~name:"fig2" ~doc:"Hit rate vs profiled flow (both schemes)" ~hit:true

let fig3_cmd =
  fig_cmd ~name:"fig3" ~doc:"Noise rate vs profiled flow (both schemes)" ~hit:false

let fig4_cmd =
  let run scale csv jobs =
    emit ~csv
      (Hotpath_experiments.Fig4.to_table
         (Hotpath_experiments.Fig4.compute ~scale ~jobs ()))
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"NET counter space normalized to path-profile-based prediction")
    Term.(const run $ scale_arg $ csv_arg $ jobs_arg)

let fig5_cmd =
  let all_arg =
    let doc = "Include the benchmarks that bail out (gcc, go, ...)." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let fig5_scale_arg =
    let doc = "Flow scale for the Dynamo runs (default 8.0; see EXPERIMENTS.md)." in
    Arg.(
      value
      & opt float Hotpath_experiments.Fig5.default_scale
      & info [ "scale" ] ~docv:"S" ~doc)
  in
  let run scale all csv jobs =
    let rows =
      if all then Hotpath_experiments.Fig5.compute_all ~scale ~jobs ()
      else Hotpath_experiments.Fig5.compute ~scale ~jobs ()
    in
    emit ~csv (Hotpath_experiments.Fig5.to_table rows)
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Dynamo speedup over native execution (NET vs path-profile)")
    Term.(const run $ fig5_scale_arg $ all_arg $ csv_arg $ jobs_arg)

let ablations_cmd =
  let which_arg =
    let doc = "Study: net-variants | boa | thresholds | costs | cache | seeds | all." in
    Arg.(value & opt string "all" & info [ "which"; "w" ] ~docv:"STUDY" ~doc)
  in
  let run scale which jobs =
    let module A = Hotpath_experiments.Ablations in
    if which = "all" || which = "net-variants" then begin
      print_endline "== NET variants (re-arm vs once vs last-executed-tail) ==";
      print_string (A.render_net_variants ~scale ~jobs ())
    end;
    if which = "all" || which = "boa" then begin
      print_endline "== NET vs Boa branch-profile construction (Section 7) ==";
      print_string (A.render_boa ~scale ~jobs ())
    end;
    if which = "all" || which = "thresholds" then begin
      print_endline "== Hot-threshold sensitivity ==";
      print_string (A.render_thresholds ~scale ~jobs ())
    end;
    if which = "all" || which = "costs" then begin
      print_endline "== Cost-model sensitivity (Figure 5 at tau=50) ==";
      print_string (A.render_cost_sensitivity ())
    end;
    if which = "all" || which = "cache" then begin
      print_endline "== Cache-pressure policies (flush vs LRU, li, tau=50) ==";
      print_string (A.render_cache_policies ())
    end;
    if which = "all" || which = "seeds" then begin
      print_endline "== Seed robustness (5 regenerated workloads per benchmark) ==";
      print_string (A.render_seed_robustness ~jobs ())
    end
  in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:"Ablation studies: NET variants, Boa comparison, threshold sensitivity")
    Term.(const run $ scale_arg $ which_arg $ jobs_arg)

let offline_cmd =
  let which_arg =
    let doc = "Study: showdown | sampling | all." in
    Arg.(value & opt string "all" & info [ "which"; "w" ] ~docv:"STUDY" ~doc)
  in
  let run scale which =
    let module O = Hotpath_experiments.Offline in
    if which = "all" || which = "showdown" then begin
      print_endline "== Edge-vs-path showdown (Ball-Mataga-Sagiv, Section 7) ==";
      print_string (O.render_showdown ~scale ())
    end;
    if which = "all" || which = "sampling" then begin
      print_endline "== Sampling profiler accuracy ==";
      print_string (O.render_sampling ~scale ())
    end
  in
  Cmd.v
    (Cmd.info "offline"
       ~doc:"Offline-profiling comparisons: edge-vs-path showdown, sampling accuracy")
    Term.(const run $ scale_arg $ which_arg)

let phases_cmd =
  let window_arg =
    let doc = "Metric window, in path instances." in
    Arg.(value & opt int 8192 & info [ "window" ] ~docv:"N" ~doc)
  in
  let run delay window =
    print_endline
      "Phase-change study: NET under four path-retirement policies (Section 6.1)";
    print_string (Hotpath_experiments.Phases.render ~delay ~window ())
  in
  Cmd.v
    (Cmd.info "phases"
       ~doc:"Phase-aware metrics with path retirement (the paper's future work)")
    Term.(const run $ delay_arg $ window_arg)

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let run scale bench events events_window jobs =
    let module Sweep = Hotpath_metrics.Sweep in
    let b = Hotpath_workloads.Suite.find_exn bench in
    let r = Hotpath_experiments.Runs.load ~scale b in
    with_events_sink events (fun sink ->
      List.iter
        (fun (scheme_name, scheme) ->
           let points, timing =
             Sweep.run_timed ~events:sink ~events_window ~jobs scheme
               r.Hotpath_experiments.Runs.recorded
               ~hot:r.Hotpath_experiments.Runs.hot ~delays:Sweep.default_delays
           in
           Printf.printf "%s / %s:\n" scheme_name bench;
           List.iter
             (fun p ->
                Printf.printf
                  "  delay=%-8d profiled=%6.2f%% hit=%6.1f%% noise=%6.1f%% \
                   preds=%-6d counters=%d\n"
                  p.Sweep.delay p.Sweep.profiled_pct p.Sweep.hit_rate
                  p.Sweep.noise_rate p.Sweep.predictions p.Sweep.counter_space)
             points;
           Format.printf "  %a@." Sweep.pp_timing timing)
        Hotpath_experiments.Figures23.schemes;
      Hotpath_util.Events.registry_snapshot sink)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Delay sweep for one benchmark, both schemes (all delays multiplexed \
          through one trace pass; --jobs shards the instance stream over \
          domains)")
    Term.(
      const run $ scale_arg $ bench_arg $ events_arg $ events_window_arg
      $ lane_jobs_arg)

let dynamo_cmd =
  let run scale bench scheme delay events events_window =
    let module E = Hotpath_dynamo.Engine in
    (* "phases" is not a Table 1 benchmark: it is the deterministic
       phase-change workload of Section 6.1, exposed here so the flush
       heuristic can be watched through --events. *)
    let recorded =
      if bench = "phases" then
        Hotpath_workloads.Suite.record_phased
          ~max_paths:(max 1000 (int_of_float (scale *. 120_000.0)))
          ()
      else
        let b = Hotpath_workloads.Suite.find_exn bench in
        (Hotpath_experiments.Runs.load ~scale b).Hotpath_experiments.Runs.recorded
    in
    let cost = Hotpath_dynamo.Cost_model.default in
    let packed = scheme_of_string scheme in
    let costs = E.costs_for ~scheme cost in
    with_events_sink events (fun sink ->
      let config =
        E.config ~cost ~scheme:packed ~scheme_costs:costs ~delay ~events:sink
          ~events_window ()
      in
      let result = E.run config recorded in
      Format.printf "%a@." E.pp_result result)
  in
  Cmd.v
    (Cmd.info "dynamo"
       ~doc:
         "Run the Dynamo simulator on one benchmark (or the 'phases' \
          phase-change workload)")
    Term.(
      const run $ scale_arg $ bench_arg $ scheme_arg $ delay_arg $ events_arg
      $ events_window_arg)

let online_cmd =
  let run scale bench scheme delay =
    let module E = Hotpath_dynamo.Engine in
    let b = Hotpath_workloads.Suite.find_exn bench in
    let program, behavior =
      Hotpath_workloads.Generator.build b.Hotpath_workloads.Suite.b_spec
        ~seed:b.Hotpath_workloads.Suite.b_seed
    in
    let cost = Hotpath_dynamo.Cost_model.default in
    let packed = scheme_of_string scheme in
    let costs = E.costs_for ~scheme cost in
    let config = E.config ~cost ~scheme:packed ~scheme_costs:costs ~delay () in
    let max_paths =
      max 1000
        (int_of_float (scale *. float_of_int b.Hotpath_workloads.Suite.b_flow))
    in
    let o =
      Hotpath_dynamo.Online.run ~max_paths ~max_steps:(max_paths * 200) ~config
        program behavior
        ~rng:(Hotpath_util.Prng.create ~seed:(b.Hotpath_workloads.Suite.b_seed * 7919))
    in
    Printf.printf "live run: %d instances, %d distinct paths\n"
      o.Hotpath_dynamo.Online.o_instances o.Hotpath_dynamo.Online.o_paths;
    Format.printf "%a@." E.pp_result o.Hotpath_dynamo.Online.o_result
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:"Run the live Dynamo driver (no recording step) on one benchmark")
    Term.(const run $ scale_arg $ bench_arg $ scheme_arg $ delay_arg)

let paths_cmd =
  let top_arg =
    let doc = "How many of the hottest paths to list." in
    Arg.(value & opt int 15 & info [ "top"; "n" ] ~docv:"N" ~doc)
  in
  let run scale bench top csv =
    let b = Hotpath_workloads.Suite.find_exn bench in
    let run = Hotpath_experiments.Runs.load ~scale b in
    let recorded = run.Hotpath_experiments.Runs.recorded in
    let module R = Hotpath_trace.Recorder in
    Printf.printf
      "%s: %d instances, %d distinct paths, %d unique heads, %d loop heads\n" bench
      (R.num_instances recorded) (R.num_paths recorded)
      (List.length (Hotpath_trace.Path_table.unique_heads recorded.R.table))
      (R.unique_loop_heads recorded);
    let profile = Hotpath_profiling.Bit_tracing.profile recorded in
    let tbl =
      Hotpath_util.Tablefmt.create
        ~columns:
          Hotpath_util.Tablefmt.
            [ ("Rank", Right); ("Signature", Left); ("Blocks", Right);
              ("Instrs", Right); ("Freq", Right); ("%Flow", Right);
              ("End", Left) ]
    in
    Array.iteri
      (fun i (p, freq) ->
         if i < top then
           Hotpath_util.Tablefmt.add_row tbl
             [
               string_of_int (i + 1);
               Hotpath_trace.Signature.to_string p.Hotpath_trace.Path.signature;
               string_of_int (Array.length p.Hotpath_trace.Path.blocks);
               string_of_int p.Hotpath_trace.Path.n_instrs;
               Hotpath_util.Tablefmt.cell_int freq;
               Hotpath_util.Tablefmt.cell_pct ~digits:2
                 (100.0 *. float_of_int freq
                  /. float_of_int (R.num_instances recorded));
               Hotpath_trace.Path.end_kind_to_string p.Hotpath_trace.Path.end_kind;
             ])
      profile.Hotpath_profiling.Bit_tracing.entries;
    emit ~csv tbl
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Show the hottest recorded paths of a benchmark")
    Term.(const run $ scale_arg $ bench_arg $ top_arg $ csv_arg)

let dot_cmd =
  let out_arg =
    let doc = "Output file (default: <bench>.dot)." in
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let run bench out =
    let b = Hotpath_workloads.Suite.find_exn bench in
    let program, _ = Hotpath_workloads.Generator.build b.Hotpath_workloads.Suite.b_spec
        ~seed:b.Hotpath_workloads.Suite.b_seed
    in
    let path = Option.value ~default:(bench ^ ".dot") out in
    let oc = open_out path in
    output_string oc (Hotpath_cfg.Cfg.to_dot program);
    close_out oc;
    Printf.printf "wrote %s (%d blocks)\n" path
      (Array.length program.Hotpath_cfg.Cfg.blocks)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a benchmark's CFG as Graphviz")
    Term.(const run $ bench_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* Trace files                                                         *)
(* ------------------------------------------------------------------ *)

let trace_arg =
  let doc = "Trace file path." in
  Arg.(required & opt (some string) None & info [ "trace"; "t" ] ~docv:"FILE" ~doc)

let stream_arg =
  let doc =
    "Stream the trace (HOTPATH3 framed format): record flushes chunks as \
     they are produced and replay pulls them one at a time, so memory \
     stays constant in the trace length."
  in
  Arg.(value & flag & info [ "stream" ] ~doc)

let record_cmd =
  let run scale bench trace stream events =
    let b = Hotpath_workloads.Suite.find_exn bench in
    with_events_sink events (fun sink ->
      if stream then begin
        let oc = open_out_bin trace in
        let summary =
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
               Hotpath_workloads.Suite.record_stream ~scale ~events:sink b
                 ~sink:(output_string oc))
        in
        Printf.printf "streamed %d instances (%d paths) of %s into %s\n"
          summary.Hotpath_trace.Recorder.cs_instances
          summary.Hotpath_trace.Recorder.cs_paths bench trace
      end
      else begin
        let recorded = Hotpath_workloads.Suite.record ~scale b in
        Hotpath_trace.Serialize.save recorded ~path:trace;
        Hotpath_util.Events.record_done sink
          ~instances:(Hotpath_trace.Recorder.num_instances recorded)
          ~paths:(Hotpath_trace.Recorder.num_paths recorded)
          ~bytes_out:
            (Int64.to_int
               (In_channel.with_open_bin trace In_channel.length));
        Printf.printf "recorded %d instances (%d paths) of %s into %s\n"
          (Hotpath_trace.Recorder.num_instances recorded)
          (Hotpath_trace.Recorder.num_paths recorded)
          bench trace
      end)
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record a benchmark's trace into a file")
    Term.(
      const run $ scale_arg $ bench_arg $ trace_arg $ stream_arg $ events_arg)

let replay_cmd =
  let run trace scheme delay stream events events_window =
    let module Replay = Hotpath_prediction.Replay in
    let report outcome =
      let hot =
        Hotpath_metrics.Hot_set.of_outcome outcome
          ~threshold:Hotpath_workloads.Suite.hot_threshold
      in
      let rates = Hotpath_metrics.Rates.operational outcome hot in
      Format.printf "%a@." Replay.pp_summary outcome;
      Format.printf "%a@." Hotpath_metrics.Rates.pp rates
    in
    let fail e =
      Printf.eprintf "cannot load %s: %s\n" trace e;
      exit 1
    in
    with_events_sink events (fun sink ->
      (if stream then
         (* Single pass: the hot set cannot be known mid-stream, so the
            window samples carry no hits/noise fields.  Regular files go
            through the zero-copy mapped reader; anything it declines
            (pipes, fifos) falls back to the buffered pull reader —
            outcomes are byte-identical either way. *)
         let ev = Replay.events ~window:events_window sink in
         let packed = scheme_of_string scheme in
         match Hotpath_trace.Serialize.Stream.Mapped.map_file ~path:trace with
         | Ok m ->
           (match Replay.run_mapped ~events:ev packed ~delay m with
            | Error e -> fail e
            | Ok outcome -> report outcome)
         | Error _ -> (
           match Hotpath_trace.Serialize.Stream.open_file ~path:trace with
           | Error e -> fail e
           | Ok rd ->
             let result = Replay.run_stream ~events:ev packed ~delay rd in
             Hotpath_trace.Serialize.Stream.close rd;
             (match result with Error e -> fail e | Ok outcome -> report outcome))
       else
         match Hotpath_trace.Serialize.load ~path:trace with
         | Error e -> fail e
         | Ok recorded ->
           (* Materialized replay knows the full-run frequencies up front,
              so the samples can carry ground-truth hits/noise. *)
           let hot =
             Hotpath_metrics.Hot_set.compute
               ~freq:(Hotpath_trace.Recorder.frequencies recorded)
               ~total_flow:(Hotpath_trace.Recorder.num_instances recorded)
               ~threshold:Hotpath_workloads.Suite.hot_threshold
           in
           let ev =
             Replay.events ~window:events_window
               ~is_hot:(Hotpath_metrics.Hot_set.is_hot hot) sink
           in
           report (Replay.run ~events:ev (scheme_of_string scheme) ~delay recorded));
      Hotpath_util.Events.registry_snapshot sink)
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a recorded trace file under a prediction scheme")
    Term.(
      const run $ trace_arg $ scheme_arg $ delay_arg $ stream_arg $ events_arg
      $ events_window_arg)

(* ------------------------------------------------------------------ *)
(* Static analysis / linting                                           *)
(* ------------------------------------------------------------------ *)

let static_cmd =
  let module SR = Hotpath_experiments.Static_report in
  let bench_opt =
    let doc =
      "Benchmark name: drill down to the per-head estimated-vs-measured \
       table (default: the all-benchmark summary)."
    in
    Arg.(value & opt (some string) None & info [ "bench"; "b" ] ~docv:"NAME" ~doc)
  in
  let top_arg =
    let doc = "Heads to list in the per-benchmark drill-down." in
    Arg.(value & opt int 12 & info [ "top" ] ~docv:"N" ~doc)
  in
  let run scale jobs csv bench top =
    match bench with
    | None ->
      if csv then print_string (SR.render_csv ~scale ~jobs ())
      else print_string (SR.render ~scale ~jobs ())
    | Some name ->
      print_string
        (SR.render_bench ~scale ~top (Hotpath_workloads.Suite.find_exn name))
  in
  Cmd.v
    (Cmd.info "static"
       ~doc:
         "Static Wu-Larus frequency estimate vs measured hot heads: rank \
          correlation, top-N overlap, and the kauto per-head window \
          selection")
    Term.(const run $ scale_arg $ jobs_arg $ csv_arg $ bench_opt $ top_arg)

let check_cmd =
  let module Diag = Hotpath_analysis.Diag in
  let bench_opt =
    let doc = "Check one benchmark's generated program (default: the whole suite)." in
    Arg.(value & opt (some string) None & info [ "bench"; "b" ] ~docv:"NAME" ~doc)
  in
  let trace_opt =
    let doc =
      "Lint a trace file instead: program well-formedness plus \
       trace-vs-program consistency (path structure, transfer legality, \
       arrival hand-offs)."
    in
    Arg.(value & opt (some string) None & info [ "trace"; "t" ] ~docv:"FILE" ~doc)
  in
  let format_arg =
    let doc =
      "Output format: human | jsonl (one \"check\" event per diagnostic \
       plus a final \"check.done\" with totals, renderable by \
       events-summary)."
    in
    Arg.(value & opt string "human" & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let report_flag =
    let doc =
      "Also print each program's static-analysis report: per-procedure \
       loops, nesting, reducibility and Ball-Larus path counts, plus the \
       NET-vs-path-profile counter-space bounds (human format only)."
    in
    Arg.(value & flag & info [ "report" ] ~doc)
  in
  let run bench trace format report =
    let jsonl =
      match format with
      | "jsonl" -> true
      | "human" -> false
      | other ->
        raise
          (Invalid_argument
             (Printf.sprintf "unknown format %s (try human|jsonl)" other))
    in
    let subjects =
      match trace with
      | Some file -> [ (file, Hotpath_trace.Check.file file, None) ]
      | None ->
        let benches =
          match bench with
          | Some name -> [ Hotpath_workloads.Suite.find_exn name ]
          | None -> Hotpath_workloads.Suite.all
        in
        List.map
          (fun b ->
             let program = Hotpath_workloads.Suite.program b in
             ( b.Hotpath_workloads.Suite.b_name,
               Hotpath_trace.Check.program program,
               Some program ))
          benches
    in
    let sink =
      if jsonl then Hotpath_util.Events.of_channel stdout
      else Hotpath_util.Events.null
    in
    let errors = ref 0 and warnings = ref 0 and infos = ref 0 in
    List.iter
      (fun (name, diags, program) ->
         errors := !errors + Diag.count Diag.Error diags;
         warnings := !warnings + Diag.count Diag.Warning diags;
         infos := !infos + Diag.count Diag.Info diags;
         if jsonl then
           List.iter
             (fun d ->
                Hotpath_util.Events.check_diag sink ~subject:name
                  ~code:d.Diag.code
                  ~severity:(Diag.severity_to_string d.Diag.severity)
                  ~loc:(Diag.location_to_string d.Diag.loc)
                  ~message:d.Diag.message)
             diags
         else begin
           Printf.printf "== %s ==\n" name;
           List.iter (fun d -> print_endline ("  " ^ Diag.to_string d)) diags;
           Printf.printf "  %d errors, %d warnings\n"
             (Diag.count Diag.Error diags)
             (Diag.count Diag.Warning diags);
           match program with
           | Some p when report -> print_string (Hotpath_analysis.Report.render p)
           | _ -> ()
         end)
      subjects;
    if jsonl then
      Hotpath_util.Events.check_done sink ~subjects:(List.length subjects)
        ~errors:!errors ~warnings:!warnings ~infos:!infos
    else
      Printf.printf "check: %d subjects, %d errors, %d warnings\n"
        (List.length subjects) !errors !warnings;
    if !errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Lint benchmark programs (or a trace file): structure, \
          reachability, reducibility, call/return pairing, Ball-Larus \
          path-count explosion, trace consistency.  Exits non-zero on any \
          error-severity diagnostic.")
    Term.(const run $ bench_opt $ trace_opt $ format_arg $ report_flag)

let events_summary_cmd =
  let file_arg =
    let doc = "Event stream file (JSON lines, as written by --events)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    match Hotpath_experiments.Events_summary.of_file file with
    | Error e ->
      Printf.eprintf "cannot summarize %s: %s\n" file e;
      exit 1
    | Ok t -> print_string (Hotpath_experiments.Events_summary.render t)
  in
  Cmd.v
    (Cmd.info "events-summary"
       ~doc:
         "Render an --events stream as per-window tables, flagging \
          phase-change windows")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc = "Unix domain socket path." in
  Arg.(
    required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let queue_arg =
    let doc =
      "In-flight decoded chunks per tenant before backpressure (the \
       tenant's socket leaves the read set until the replay drains)."
    in
    Arg.(value & opt int 8 & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let burst_arg =
    let doc = "Chunks replayed per tenant per scheduling tick." in
    Arg.(value & opt int 4 & info [ "drain-burst" ] ~docv:"N" ~doc)
  in
  let run socket queue burst events =
    with_events_sink events (fun sink ->
      match
        Hotpath_serve.Serve.Server.create ~events:sink ~queue_capacity:queue
          ~drain_burst:burst ~socket_path:socket ()
      with
      | Error e ->
        Printf.eprintf "serve: %s\n" e;
        exit 1
      | Ok server ->
        let stop _ = Hotpath_serve.Serve.Server.stop server in
        (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
         with Invalid_argument _ | Sys_error _ -> ());
        (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
         with Invalid_argument _ | Sys_error _ -> ());
        Printf.printf "listening on %s\n%!" socket;
        Hotpath_serve.Serve.Server.run server;
        let s = Hotpath_serve.Serve.Server.stats server in
        Printf.printf
          "served %d connections: %d completed, %d errored, %d instances \
           (queue high-water %d)\n"
          s.Hotpath_serve.Serve.Server.accepted
          s.Hotpath_serve.Serve.Server.completed
          s.Hotpath_serve.Serve.Server.errored
          s.Hotpath_serve.Serve.Server.instances
          s.Hotpath_serve.Serve.Server.queue_high_water)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the prediction daemon: accept HOTPATH3 trace streams from \
          concurrent clients over a Unix socket (one tenant session per \
          connection, handshake 'HPSERVE1 <tenant> <scheme> <delays>'), \
          replay each through the online session API, and reply with \
          per-delay-lane results.  Stop with SIGINT/SIGTERM.")
    Term.(const run $ socket_arg $ queue_arg $ burst_arg $ events_arg)

let serve_send_cmd =
  let tenant_arg =
    let doc = "Tenant name (one active stream per tenant)." in
    Arg.(value & opt string "cli" & info [ "tenant" ] ~docv:"NAME" ~doc)
  in
  let delays_arg =
    let doc = "Prediction delays (comma-separated)." in
    Arg.(value & opt (list int) [ 50 ] & info [ "delays" ] ~docv:"D1,D2" ~doc)
  in
  let chunk_bytes_arg =
    let doc = "Socket write size in bytes." in
    Arg.(value & opt int 65536 & info [ "chunk-bytes" ] ~docv:"N" ~doc)
  in
  let run socket tenant scheme delays trace chunk_bytes =
    let data = In_channel.with_open_bin trace In_channel.input_all in
    match
      Hotpath_serve.Serve.Client.send ~socket_path:socket ~tenant ~scheme
        ~delays ~chunk_bytes data
    with
    | Error e ->
      Printf.eprintf "serve-send: %s\n" e;
      exit 1
    | Ok lines ->
      let ok = ref false in
      List.iter
        (fun fields ->
          let kind =
            Option.value ~default:"?" (Hotpath_util.Events.kind fields)
          in
          if kind = "serve.ok" then ok := true;
          let render (k, v) =
            Printf.sprintf "%s=%s" k
              (match v with
              | Hotpath_util.Events.Int i -> string_of_int i
              | Hotpath_util.Events.Float f -> Printf.sprintf "%g" f
              | Hotpath_util.Events.Str s -> s
              | Hotpath_util.Events.Bool b -> string_of_bool b)
          in
          Printf.printf "%s %s\n" kind
            (String.concat " "
               (List.map render
                  (List.filter (fun (k, _) -> k <> "ev") fields))))
        lines;
      if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "serve-send"
       ~doc:
         "Stream a recorded HOTPATH3 trace file to a running serve daemon \
          and print the per-lane results.  Exits non-zero unless the \
          server replied serve.ok.")
    Term.(
      const run $ socket_arg $ tenant_arg $ scheme_arg $ delays_arg
      $ trace_arg $ chunk_bytes_arg)

let bench_list_cmd =
  let run () =
    List.iter
      (fun b ->
         Printf.printf "%-10s %s\n" b.Hotpath_workloads.Suite.b_name
           b.Hotpath_workloads.Suite.b_description)
      Hotpath_workloads.Suite.all
  in
  Cmd.v (Cmd.info "bench-list" ~doc:"List the benchmark suite") Term.(const run $ const ())

let main_cmd =
  Cmd.group
    (Cmd.info "hotpath" ~version:"1.0.0"
       ~doc:
         "Reproduction of Duesterwald & Bala, Software Profiling for Hot Path \
          Prediction: Less is More (ASPLOS 2000)")
    [
      table1_cmd; table2_cmd; fig2_cmd; fig3_cmd; fig4_cmd; fig5_cmd; ablations_cmd; offline_cmd; phases_cmd;
      sweep_cmd; dynamo_cmd; online_cmd; paths_cmd; dot_cmd; record_cmd; replay_cmd;
      serve_cmd; serve_send_cmd; check_cmd; static_cmd; events_summary_cmd; bench_list_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
